#include "core/env.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>

#include "sim/cost_model.h"
#include "support/check.h"
#include "support/metrics.h"

namespace eagle::core {

namespace {

// Registry handles resolved once; the objects live for the process, so
// the raw pointers stay valid. These counters are observers only — the
// authoritative, checkpointed statistics remain the members guarded by
// state_mutex_.
struct EnvMetrics {
  support::metrics::Counter* evaluations =
      support::metrics::GetCounter("env.evaluations");
  support::metrics::Counter* cache_hits =
      support::metrics::GetCounter("env.cache_hits");
  support::metrics::Counter* cache_misses =
      support::metrics::GetCounter("env.cache_misses");
  support::metrics::Counter* attempts =
      support::metrics::GetCounter("env.attempts");
  support::metrics::Counter* transient_failures =
      support::metrics::GetCounter("env.transient_failures");
  support::metrics::Counter* timeouts =
      support::metrics::GetCounter("env.timeouts");
  support::metrics::Counter* retries =
      support::metrics::GetCounter("env.retries");
  support::metrics::Counter* exhausted =
      support::metrics::GetCounter("env.exhausted_evaluations");
  support::metrics::Histogram* backoff_seconds =
      support::metrics::GetHistogram("env.backoff_seconds");
};

EnvMetrics& Metrics() {
  static EnvMetrics m;
  return m;
}

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <typename T>
void ReadPod(std::istream& in, T& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof(value));
  EAGLE_CHECK_MSG(in, "truncated environment state");
}

// The session's simulator gets the environment-level delta switch folded
// into its own options (SimulatorOptions stays the single source of truth
// below the environment layer).
sim::SimulatorOptions WithDelta(sim::SimulatorOptions options, bool enabled) {
  options.delta.enabled = enabled;
  return options;
}

}  // namespace

PlacementEnvironment::PlacementEnvironment(const graph::OpGraph& graph,
                                           const sim::ClusterSpec& cluster,
                                           EnvironmentOptions options)
    : graph_(&graph),
      cluster_(&cluster),
      options_(options),
      session_(graph, cluster, options.measurement,
               WithDelta(options.simulator, options.delta_resim)),
      fault_rng_(options.faults.seed),
      cache_(options.eval_cache_capacity) {
  options_.retry.Validate();
  if (options_.faults.enabled()) {
    injector_ = std::make_unique<sim::FaultInjector>(options_.faults, cluster);
  }
  // Serialized lower bound on the fastest device (ignoring memory): the
  // "if it all fit on one GPU" time, scaled into the invalid penalty.
  const sim::CostModel cost(cluster);
  double best = std::numeric_limits<double>::infinity();
  for (sim::DeviceId d = 0; d < cluster.num_devices(); ++d) {
    double total = 0.0;
    for (graph::OpId i = 0; i < graph.num_ops(); ++i) {
      total += cost.ComputeSeconds(graph.op(i), d);
    }
    best = std::min(best, total);
  }
  penalty_seconds_ = options_.penalty_factor * best;
  EAGLE_CHECK(penalty_seconds_ > 0.0);
}

bool PlacementEnvironment::PendingContains(
    std::uint64_t hash, const std::vector<sim::DeviceId>& devices) const {
  for (const PendingEval& pending : pending_) {
    if (pending.hash == hash && pending.devices == devices) return true;
  }
  return false;
}

EvalTicket PlacementEnvironment::PrepareEvaluation(
    const sim::Placement& placement) {
  std::lock_guard<std::mutex> lock(state_mutex_);
  ++evaluations_;
  Metrics().evaluations->Increment();
  EvalTicket ticket;
  if (injector_ != nullptr) {
    // One master-stream draw per evaluation, in dispatch order: the
    // per-sample child then feeds every retry attempt and backoff jitter
    // of this evaluation, on whichever thread it lands.
    ticket.fault_rng = fault_rng_.Split();
  }
  if (options_.cache_evaluations) {
    const std::uint64_t hash = placement.Hash();
    if (cache_.LookupByHash(hash, placement.devices(), &ticket.clean)) {
      ticket.has_clean = true;
      ticket.counted_cache_hit = true;
    } else if (PendingContains(hash, placement.devices())) {
      // A duplicate of an in-flight evaluation: a serial run would have
      // found it cached by now, so count the hit (the worker recomputes
      // the identical noiseless result rather than waiting).
      ticket.counted_cache_hit = true;
    }
    if (ticket.counted_cache_hit) {
      ++cache_hits_;
      Metrics().cache_hits->Increment();
    } else {
      Metrics().cache_misses->Increment();
    }
    pending_.push_back(PendingEval{hash, placement.devices()});
  }
  return ticket;
}

EvalOutcome PlacementEnvironment::EvaluateTicket(
    const sim::Placement& placement, EvalTicket& ticket,
    support::Rng* rng) const {
  EvalOutcome outcome;
  sim::EvalResult clean;
  if (ticket.has_clean) {
    clean = ticket.clean;
  } else {
    // The *noiseless* result is what gets cached; noise is re-applied
    // per evaluation below so repeated visits still look like
    // independent measurements.
    clean = session_.Evaluate(placement, nullptr);
    outcome.clean = clean;
    outcome.insert_clean = options_.cache_evaluations;
  }

  if (injector_ == nullptr) {
    outcome.attempts = 1;
    sim::EvalResult result = clean;
    if (result.valid && rng != nullptr &&
        options_.measurement.noise_stddev > 0.0) {
      const int measured = options_.measurement.total_steps -
                           options_.measurement.warmup_steps;
      double sum = 0.0;
      for (int i = 0; i < measured; ++i) {
        sum += result.true_per_step_seconds *
               sim::NoiseFactor(options_.measurement.noise_stddev, *rng);
      }
      result.per_step_seconds = sum / measured;
    }
    outcome.result = result;
    return outcome;
  }

  outcome.result =
      EvaluateWithRetries(placement, clean, rng, ticket.fault_rng, &outcome);
  return outcome;
}

sim::EvalResult PlacementEnvironment::EvaluateWithRetries(
    const sim::Placement& placement, const sim::EvalResult& clean,
    support::Rng* noise_rng, support::Rng& fault_rng,
    EvalOutcome* outcome) const {
  const support::RetryPolicy& retry = options_.retry;
  double cost_so_far = 0.0;
  for (int attempt = 1; attempt <= retry.max_attempts; ++attempt) {
    ++outcome->attempts;
    const sim::FaultDraw draw = injector_->Draw(fault_rng);
    sim::EvalResult result =
        session_.EvaluateWithFaults(placement, draw, noise_rng);
    bool attempt_failed = result.failed;
    double attempt_cost = result.measurement_cost_seconds;
    if (attempt_failed) {
      ++outcome->transient_failures;
    } else if (retry.attempt_timeout_seconds > 0.0 &&
               attempt_cost > retry.attempt_timeout_seconds) {
      // The harness kills sessions that overrun the measurement budget
      // (e.g. a pathological straggler): the attempt charges exactly the
      // timeout, then counts as a failure.
      attempt_failed = true;
      attempt_cost = retry.attempt_timeout_seconds;
      ++outcome->timeouts;
    }
    cost_so_far += attempt_cost;
    if (!attempt_failed) {
      // The healthy machine's per-step time is the ground truth used for
      // best-placement tracking; what the agent *observed* stays faulty.
      result.valid = clean.valid;
      result.true_per_step_seconds = clean.true_per_step_seconds;
      result.attempts = attempt;
      result.measurement_cost_seconds = cost_so_far;
      return result;
    }
    if (attempt < retry.max_attempts) {
      ++outcome->retries;
      const double backoff = retry.BackoffSeconds(attempt, &fault_rng);
      outcome->backoff_seconds += backoff;
      cost_so_far += backoff;
    }
  }
  // Persistent failure: degrade into the invalid-placement penalty so
  // training continues instead of aborting.
  ++outcome->exhausted;
  sim::EvalResult result;
  result.valid = false;
  result.failed = true;
  result.attempts = retry.max_attempts;
  result.measurement_cost_seconds = cost_so_far;
  return result;
}

void PlacementEnvironment::CommitEvaluation(const sim::Placement& placement,
                                            const EvalOutcome& outcome) {
  std::lock_guard<std::mutex> lock(state_mutex_);
  if (options_.cache_evaluations) {
    const std::uint64_t hash = placement.Hash();
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
      if (it->hash == hash && it->devices == placement.devices()) {
        pending_.erase(it);
        break;
      }
    }
    if (outcome.insert_clean) cache_.Insert(placement, outcome.clean);
  }
  attempts_ += outcome.attempts;
  transient_failures_ += outcome.transient_failures;
  timeouts_ += outcome.timeouts;
  retries_ += outcome.retries;
  exhausted_evaluations_ += outcome.exhausted;
  // Doubles don't commute bit-exactly: summed here, in commit order, so
  // an N-thread run reports the same total as a serial one.
  backoff_seconds_total_ += outcome.backoff_seconds;
  EnvMetrics& m = Metrics();
  m.attempts->Increment(outcome.attempts);
  m.transient_failures->Increment(outcome.transient_failures);
  m.timeouts->Increment(outcome.timeouts);
  m.retries->Increment(outcome.retries);
  m.exhausted->Increment(outcome.exhausted);
  if (outcome.retries > 0) {
    m.backoff_seconds->Observe(outcome.backoff_seconds);
  }
}

sim::EvalResult PlacementEnvironment::Evaluate(
    const sim::Placement& placement, support::Rng* rng) {
  EvalTicket ticket = PrepareEvaluation(placement);
  EvalOutcome outcome = EvaluateTicket(placement, ticket, rng);
  CommitEvaluation(placement, outcome);
  return outcome.result;
}

double PlacementEnvironment::backoff_seconds_total() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return backoff_seconds_total_;
}

void PlacementEnvironment::SerializeState(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  const auto rng_state = fault_rng_.state();
  for (std::uint64_t s : rng_state) WritePod(out, s);
  WritePod(out, cache_hits_);
  WritePod(out, evaluations_);
  WritePod(out, attempts_);
  WritePod(out, transient_failures_);
  WritePod(out, timeouts_);
  WritePod(out, retries_);
  WritePod(out, exhausted_evaluations_);
  WritePod(out, backoff_seconds_total_);
}

void PlacementEnvironment::DeserializeState(std::istream& in) {
  std::lock_guard<std::mutex> lock(state_mutex_);
  std::array<std::uint64_t, 4> rng_state{};
  for (auto& s : rng_state) ReadPod(in, s);
  fault_rng_.set_state(rng_state);
  ReadPod(in, cache_hits_);
  ReadPod(in, evaluations_);
  ReadPod(in, attempts_);
  ReadPod(in, transient_failures_);
  ReadPod(in, timeouts_);
  ReadPod(in, retries_);
  ReadPod(in, exhausted_evaluations_);
  ReadPod(in, backoff_seconds_total_);
}

}  // namespace eagle::core
