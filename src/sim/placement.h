// Placement: the op → device mapping the agents optimize.
//
// Placements are normalized before simulation: CPU-pinned ops are forced
// to the CPU device and TensorFlow-style colocation groups are collapsed
// onto their leader's device (variables colocate with their optimizer
// update op).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/op_graph.h"
#include "sim/device.h"

namespace eagle::sim {

class Placement {
 public:
  Placement() = default;
  Placement(const graph::OpGraph& graph, std::vector<DeviceId> device_per_op);

  // Every op on `device` (cpu_only ops still forced to CPU).
  static Placement AllOnDevice(const graph::OpGraph& graph,
                               const ClusterSpec& cluster, DeviceId device);

  // Rebuilds a placement from a raw device vector without constraint
  // checks — for deserializing already-normalized placements from
  // checkpoints.
  static Placement FromRaw(std::vector<DeviceId> devices) {
    Placement placement;
    placement.devices_ = std::move(devices);
    return placement;
  }

  int num_ops() const { return static_cast<int>(devices_.size()); }
  DeviceId device(graph::OpId op) const;
  const std::vector<DeviceId>& devices() const { return devices_; }

  // Applies cpu-pinning and colocation constraints in place.
  void Normalize(const graph::OpGraph& graph, const ClusterSpec& cluster);

  // Per-device op counts (after normalization) — used in reports.
  std::vector<int> OpsPerDevice(const ClusterSpec& cluster) const;

  // Stable 64-bit content hash (for the environment's evaluation cache).
  std::uint64_t Hash() const;

  std::string ToString(const graph::OpGraph& graph,
                       const ClusterSpec& cluster) const;

 private:
  std::vector<DeviceId> devices_;
};

}  // namespace eagle::sim
