#include "sim/placement.h"

#include <map>
#include <sstream>

#include "support/check.h"

namespace eagle::sim {

Placement::Placement(const graph::OpGraph& graph,
                     std::vector<DeviceId> device_per_op)
    : devices_(std::move(device_per_op)) {
  EAGLE_CHECK_MSG(static_cast<int>(devices_.size()) == graph.num_ops(),
                  "placement covers " << devices_.size() << " ops, graph has "
                                      << graph.num_ops());
}

Placement Placement::AllOnDevice(const graph::OpGraph& graph,
                                 const ClusterSpec& cluster, DeviceId device) {
  EAGLE_CHECK(device >= 0 && device < cluster.num_devices());
  Placement placement(graph, std::vector<DeviceId>(
                                 static_cast<std::size_t>(graph.num_ops()),
                                 device));
  placement.Normalize(graph, cluster);
  return placement;
}

DeviceId Placement::device(graph::OpId op) const {
  EAGLE_CHECK(op >= 0 && op < num_ops());
  return devices_[static_cast<std::size_t>(op)];
}

void Placement::Normalize(const graph::OpGraph& graph,
                          const ClusterSpec& cluster) {
  EAGLE_CHECK(static_cast<int>(devices_.size()) == graph.num_ops());
  const DeviceId cpu = cluster.FirstCpu();
  EAGLE_CHECK_MSG(cpu >= 0, "cluster has no CPU device for pinned ops");
  for (auto& d : devices_) {
    EAGLE_CHECK_MSG(d >= 0 && d < cluster.num_devices(),
                    "device id " << d << " out of range");
  }
  // Colocation leaders: the first op seen in each group decides.
  std::map<std::int32_t, DeviceId> leader;
  for (graph::OpId i = 0; i < graph.num_ops(); ++i) {
    const auto& op = graph.op(i);
    if (op.cpu_only) devices_[static_cast<std::size_t>(i)] = cpu;
    if (op.colocation_group >= 0) {
      auto [it, inserted] = leader.emplace(
          op.colocation_group, devices_[static_cast<std::size_t>(i)]);
      if (!inserted) devices_[static_cast<std::size_t>(i)] = it->second;
    }
  }
  // A cpu_only op inside a colocation group drags the group to CPU.
  for (graph::OpId i = 0; i < graph.num_ops(); ++i) {
    const auto& op = graph.op(i);
    if (op.colocation_group >= 0 && op.cpu_only) {
      leader[op.colocation_group] = cpu;
    }
  }
  for (graph::OpId i = 0; i < graph.num_ops(); ++i) {
    const auto& op = graph.op(i);
    if (op.colocation_group >= 0) {
      devices_[static_cast<std::size_t>(i)] = leader[op.colocation_group];
    }
  }
}

std::vector<int> Placement::OpsPerDevice(const ClusterSpec& cluster) const {
  std::vector<int> counts(static_cast<std::size_t>(cluster.num_devices()), 0);
  for (DeviceId d : devices_) counts[static_cast<std::size_t>(d)]++;
  return counts;
}

std::uint64_t Placement::Hash() const {
  // FNV-1a over device ids.
  std::uint64_t h = 1469598103934665603ULL;
  for (DeviceId d : devices_) {
    h ^= static_cast<std::uint64_t>(d) + 0x9E3779B97F4A7C15ULL;
    h *= 1099511628211ULL;
  }
  return h;
}

std::string Placement::ToString(const graph::OpGraph& graph,
                                const ClusterSpec& cluster) const {
  std::ostringstream os;
  const auto counts = OpsPerDevice(cluster);
  for (DeviceId d = 0; d < cluster.num_devices(); ++d) {
    os << cluster.device(d).name << ": " << counts[static_cast<std::size_t>(d)]
       << " ops";
    if (d + 1 < cluster.num_devices()) os << ", ";
  }
  (void)graph;
  return os.str();
}

}  // namespace eagle::sim
