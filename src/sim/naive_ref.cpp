#include "sim/naive_ref.h"

#include <algorithm>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/cost_model.h"
#include "sim/memory_model.h"
#include "support/check.h"

namespace eagle::sim::naive {

namespace {

// Ready-queue entry: ops ready earlier run first; ties broken by longer
// downstream critical path, then by id for determinism.
struct NaiveReadyOp {
  double ready_time;
  int priority;
  graph::OpId op;

  bool operator>(const NaiveReadyOp& other) const {
    if (ready_time != other.ready_time) return ready_time > other.ready_time;
    if (priority != other.priority) return priority < other.priority;
    return op > other.op;
  }
};

using ReadyQueue = std::priority_queue<NaiveReadyOp, std::vector<NaiveReadyOp>,
                                       std::greater<NaiveReadyOp>>;

}  // namespace

std::vector<int> CriticalPriorities(const graph::OpGraph& g) {
  // Downstream critical-path length (in ops) as static priority.
  const std::vector<graph::OpId> topo = g.TopologicalOrder();
  std::vector<int> critical_priority(static_cast<std::size_t>(g.num_ops()), 0);
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const graph::OpId u = *it;
    int best = 0;
    for (auto ei : g.out_edges(u)) {
      const graph::OpId v = g.edges()[static_cast<std::size_t>(ei)].dst;
      best = std::max(best, critical_priority[static_cast<std::size_t>(v)] + 1);
    }
    critical_priority[static_cast<std::size_t>(u)] = best;
  }
  return critical_priority;
}

StepResult RunReference(const graph::OpGraph& g, const ClusterSpec& cluster,
                        const SimulatorOptions& options,
                        const Placement& placement, const FaultDraw* faults,
                        bool record_schedule) {
  return RunReference(g, cluster, options, CriticalPriorities(g), placement,
                      faults, record_schedule);
}

StepResult RunReference(const graph::OpGraph& g, const ClusterSpec& cluster,
                        const SimulatorOptions& options,
                        const std::vector<int>& critical_priority,
                        const Placement& placement, const FaultDraw* faults,
                        bool record_schedule) {
  const int num_ops = g.num_ops();
  const int num_devices = cluster.num_devices();
  EAGLE_CHECK(placement.num_ops() == num_ops);
  const CostModel cost_model(cluster);

  const auto compute_scale = [faults](DeviceId d) {
    return faults == nullptr
               ? 1.0
               : faults->device_compute_scale[static_cast<std::size_t>(d)];
  };
  const auto link_scale = [&cluster, faults](DeviceId src, DeviceId dst) {
    return faults == nullptr
               ? 1.0
               : faults->link_scale[static_cast<std::size_t>(
                     cluster.link_channel(src, dst))];
  };

  StepResult result;
  result.device_busy_seconds.assign(static_cast<std::size_t>(num_devices), 0.0);
  result.device_peak_bytes.assign(static_cast<std::size_t>(num_devices), 0);
  result.device_param_bytes.assign(static_cast<std::size_t>(num_devices), 0);

  std::vector<double> ready_time(static_cast<std::size_t>(num_ops), 0.0);
  std::vector<double> finish_time(static_cast<std::size_t>(num_ops), 0.0);
  std::vector<int> pending_inputs(static_cast<std::size_t>(num_ops), 0);
  for (graph::OpId i = 0; i < num_ops; ++i) {
    pending_inputs[static_cast<std::size_t>(i)] =
        static_cast<int>(g.in_edges(i).size());
  }

  std::vector<double> device_free(static_cast<std::size_t>(num_devices), 0.0);
  std::vector<double> link_free(
      static_cast<std::size_t>(cluster.num_link_channels()), 0.0);
  std::vector<ReadyQueue> queues(static_cast<std::size_t>(num_devices));

  // Transfer dedup: (producer op, dst device, hashed bytes) -> arrival.
  struct TransferKey {
    std::uint64_t packed;
    bool operator==(const TransferKey& o) const { return packed == o.packed; }
  };
  struct TransferKeyHash {
    std::size_t operator()(const TransferKey& k) const {
      return std::hash<std::uint64_t>()(k.packed);
    }
  };
  std::unordered_map<TransferKey, double, TransferKeyHash> transfer_cache;
  auto make_key = [](graph::OpId src, DeviceId dst, std::int64_t bytes) {
    // 24 bits of op id, 8 of device, 32 of byte-size hash.
    const std::uint64_t bhash =
        static_cast<std::uint64_t>(bytes) * 0x9E3779B97F4A7C15ULL >> 32;
    return TransferKey{(static_cast<std::uint64_t>(src) << 40) |
                       (static_cast<std::uint64_t>(dst) << 32) | bhash};
  };

  int scheduled = 0;
  for (graph::OpId i = 0; i < num_ops; ++i) {
    if (pending_inputs[static_cast<std::size_t>(i)] == 0) {
      queues[static_cast<std::size_t>(placement.device(i))].push(
          NaiveReadyOp{0.0, critical_priority[static_cast<std::size_t>(i)], i});
    }
  }

  std::vector<std::vector<LiveInterval>> intervals(
      static_cast<std::size_t>(num_devices));
  std::unordered_map<std::uint64_t, std::size_t> live_slot;
  auto touch = [&](graph::OpId producer, DeviceId device, double start,
                   double end, std::int64_t bytes) {
    if (!options.track_memory || bytes <= 0) return;
    const std::uint64_t key = (static_cast<std::uint64_t>(producer) << 8) |
                              static_cast<std::uint64_t>(device);
    auto it = live_slot.find(key);
    if (it == live_slot.end()) {
      live_slot.emplace(key,
                        intervals[static_cast<std::size_t>(device)].size());
      intervals[static_cast<std::size_t>(device)].push_back(
          LiveInterval{start, end, bytes});
    } else {
      auto& iv = intervals[static_cast<std::size_t>(device)][it->second];
      iv.start = std::min(iv.start, start);
      iv.end = std::max(iv.end, end);
    }
  };

  while (scheduled < num_ops) {
    DeviceId best_dev = -1;
    double best_start = 0.0;
    int best_priority = -1;
    for (DeviceId d = 0; d < num_devices; ++d) {
      auto& q = queues[static_cast<std::size_t>(d)];
      if (q.empty()) continue;
      const NaiveReadyOp& head = q.top();
      const double start =
          std::max(head.ready_time, device_free[static_cast<std::size_t>(d)]);
      if (best_dev < 0 || start < best_start ||
          (start == best_start && head.priority > best_priority)) {
        best_dev = d;
        best_start = start;
        best_priority = head.priority;
      }
    }
    EAGLE_CHECK_MSG(best_dev >= 0,
                    "deadlock: no ready ops but " << num_ops - scheduled
                                                  << " unscheduled");
    auto& q = queues[static_cast<std::size_t>(best_dev)];
    const graph::OpId u = q.top().op;
    q.pop();
    ++scheduled;

    const double start = best_start;
    const double compute =
        cost_model.ComputeSeconds(g.op(u), best_dev) * compute_scale(best_dev);
    const double finish = start + compute;
    finish_time[static_cast<std::size_t>(u)] = finish;
    device_free[static_cast<std::size_t>(best_dev)] = finish;
    result.device_busy_seconds[static_cast<std::size_t>(best_dev)] += compute;
    if (record_schedule) {
      result.schedule.push_back(ScheduledOp{u, best_dev, start, finish});
    }

    touch(u, best_dev, finish, finish, g.op(u).output_bytes());

    for (auto ei : g.out_edges(u)) {
      const graph::Edge& e = g.edges()[static_cast<std::size_t>(ei)];
      const DeviceId dst_dev = placement.device(e.dst);
      double arrival = finish;
      if (dst_dev != best_dev) {
        const TransferKey key = make_key(u, dst_dev, e.bytes);
        auto it = transfer_cache.find(key);
        if (it != transfer_cache.end()) {
          arrival = it->second;
        } else {
          auto& lf = link_free[static_cast<std::size_t>(
              cluster.link_channel(best_dev, dst_dev))];
          const double xfer_start = std::max(finish, lf);
          const double xfer =
              cost_model.TransferSeconds(best_dev, dst_dev, e.bytes) *
              link_scale(best_dev, dst_dev);
          arrival = xfer_start + xfer;
          lf = arrival;
          transfer_cache.emplace(key, arrival);
          result.transfer_seconds_total += xfer;
          result.transfer_bytes_total += e.bytes;
          result.num_transfers++;
          if (record_schedule) {
            result.transfers.push_back(ScheduledTransfer{
                u, best_dev, dst_dev, e.bytes, xfer_start, arrival});
          }
          touch(u, dst_dev, arrival, arrival, e.bytes);
        }
      }
      ready_time[static_cast<std::size_t>(e.dst)] =
          std::max(ready_time[static_cast<std::size_t>(e.dst)], arrival);
      if (--pending_inputs[static_cast<std::size_t>(e.dst)] == 0) {
        queues[static_cast<std::size_t>(dst_dev)].push(
            NaiveReadyOp{ready_time[static_cast<std::size_t>(e.dst)],
                         critical_priority[static_cast<std::size_t>(e.dst)],
                         e.dst});
      }
    }
    result.step_seconds = std::max(result.step_seconds, finish);

    if (options.track_memory) {
      for (auto ei : g.in_edges(u)) {
        const graph::Edge& e = g.edges()[static_cast<std::size_t>(ei)];
        touch(e.src, best_dev, start, finish,
              placement.device(e.src) == best_dev ? g.op(e.src).output_bytes()
                                                  : e.bytes);
      }
    }
  }

  if (options.track_memory) {
    for (graph::OpId i = 0; i < num_ops; ++i) {
      result
          .device_param_bytes[static_cast<std::size_t>(placement.device(i))] +=
          g.op(i).param_bytes;
    }
    for (DeviceId d = 0; d < num_devices; ++d) {
      const std::int64_t activation_peak =
          PeakLiveBytes(std::move(intervals[static_cast<std::size_t>(d)]));
      const std::int64_t peak =
          result.device_param_bytes[static_cast<std::size_t>(d)] +
          static_cast<std::int64_t>(static_cast<double>(activation_peak) *
                                    options.memory.activation_overhead);
      result.device_peak_bytes[static_cast<std::size_t>(d)] = peak;
      if (peak > cluster.device(d).memory_bytes && !result.oom) {
        result.oom = true;
        result.oom_device = d;
      }
    }
  }
  return result;
}

}  // namespace eagle::sim::naive
