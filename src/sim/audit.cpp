#include "sim/audit.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <sstream>
#include <tuple>
#include <utility>

#include "sim/memory_model.h"

namespace eagle::sim {

namespace {

// Scheduling times are sums of strictly positive costs; 1ns of slack
// absorbs double rounding without masking real regressions.
constexpr double kEps = 1e-9;
constexpr int kMaxViolations = 64;

class Reporter {
 public:
  explicit Reporter(AuditReport* report) : report_(report) {}

  void Add(const char* invariant, const std::string& detail) {
    if (static_cast<int>(report_->violations.size()) >= kMaxViolations) {
      ++report_->dropped;
      return;
    }
    report_->violations.push_back(AuditViolation{invariant, detail});
  }

 private:
  AuditReport* report_;
};

std::string OpLabel(const graph::OpGraph& graph, graph::OpId op) {
  std::ostringstream os;
  os << "op " << op;
  if (op >= 0 && op < graph.num_ops()) os << " (" << graph.op(op).name << ")";
  return os.str();
}

}  // namespace

std::string AuditReport::ToString() const {
  std::ostringstream os;
  os << violations.size() + dropped << " schedule-invariant violation(s)";
  for (const AuditViolation& v : violations) {
    os << "\n  [" << v.invariant << "] " << v.detail;
  }
  if (dropped > 0) os << "\n  ... and " << dropped << " more";
  return os.str();
}

AuditReport AuditSchedule(const StepResult& result,
                          const graph::OpGraph& graph,
                          const ClusterSpec& cluster,
                          const Placement& placement,
                          const SimulatorOptions& options) {
  AuditReport report;
  Reporter add(&report);
  const int num_ops = graph.num_ops();
  const int num_devices = cluster.num_devices();
  if (placement.num_ops() != num_ops) {
    add.Add("schedule-complete",
            "placement covers " + std::to_string(placement.num_ops()) +
                " ops but the graph has " + std::to_string(num_ops));
    return report;
  }

  // --- Schedule completeness: every op exactly once, on its placed device.
  std::vector<int> seen(static_cast<std::size_t>(num_ops), 0);
  for (const ScheduledOp& rec : result.schedule) {
    if (rec.op < 0 || rec.op >= num_ops) {
      add.Add("schedule-complete", OpLabel(graph, rec.op) + " out of range");
      continue;
    }
    ++seen[static_cast<std::size_t>(rec.op)];
    if (rec.device < 0 || rec.device >= num_devices) {
      add.Add("schedule-complete",
              OpLabel(graph, rec.op) + " scheduled on invalid device " +
                  std::to_string(rec.device));
    } else if (placement.device(rec.op) != rec.device) {
      add.Add("schedule-complete",
              OpLabel(graph, rec.op) + " ran on device " +
                  std::to_string(rec.device) + " but is placed on " +
                  std::to_string(placement.device(rec.op)));
    }
    if (rec.end_seconds < rec.start_seconds - kEps ||
        rec.start_seconds < -kEps) {
      std::ostringstream os;
      os << OpLabel(graph, rec.op) << " has regressing time ["
         << rec.start_seconds << ", " << rec.end_seconds << "]";
      add.Add("device-monotonic", os.str());
    }
  }
  for (graph::OpId op = 0; op < num_ops; ++op) {
    if (seen[static_cast<std::size_t>(op)] != 1) {
      add.Add("schedule-complete",
              OpLabel(graph, op) + " scheduled " +
                  std::to_string(seen[static_cast<std::size_t>(op)]) +
                  " times (want 1)");
    }
  }
  if (!report.ok()) return report;  // downstream checks assume a 1:1 schedule

  // --- Per-device monotonicity: a device executes one op at a time.
  std::vector<std::vector<const ScheduledOp*>> per_device(
      static_cast<std::size_t>(num_devices));
  for (const ScheduledOp& rec : result.schedule) {
    per_device[static_cast<std::size_t>(rec.device)].push_back(&rec);
  }
  for (int d = 0; d < num_devices; ++d) {
    auto& ops = per_device[static_cast<std::size_t>(d)];
    std::sort(ops.begin(), ops.end(),
              [](const ScheduledOp* a, const ScheduledOp* b) {
                if (a->start_seconds != b->start_seconds) {
                  return a->start_seconds < b->start_seconds;
                }
                return a->op < b->op;
              });
    for (std::size_t i = 1; i < ops.size(); ++i) {
      if (ops[i]->start_seconds < ops[i - 1]->end_seconds - kEps) {
        std::ostringstream os;
        os << OpLabel(graph, ops[i]->op) << " starts at "
           << ops[i]->start_seconds << " before "
           << OpLabel(graph, ops[i - 1]->op) << " ends at "
           << ops[i - 1]->end_seconds << " on device " << d;
        add.Add("device-monotonic", os.str());
      }
    }
  }

  // --- Transfers: endpoints, duration, departure after the producer.
  std::vector<const ScheduledOp*> by_op(static_cast<std::size_t>(num_ops));
  for (const ScheduledOp& rec : result.schedule) {
    by_op[static_cast<std::size_t>(rec.op)] = &rec;
  }
  // (producer, dst device, bytes) -> arrival. The simulator dedups on the
  // same triple (modulo its 32-bit byte hash), so the triple is unique.
  std::map<std::tuple<graph::OpId, DeviceId, std::int64_t>, double> arrival;
  for (const ScheduledTransfer& t : result.transfers) {
    if (t.producer < 0 || t.producer >= num_ops || t.src < 0 ||
        t.src >= num_devices || t.dst < 0 || t.dst >= num_devices ||
        t.src == t.dst) {
      add.Add("transfer-endpoints",
              "transfer of " + OpLabel(graph, t.producer) +
                  " has invalid endpoints " + std::to_string(t.src) + "->" +
                  std::to_string(t.dst));
      continue;
    }
    const ScheduledOp* producer = by_op[static_cast<std::size_t>(t.producer)];
    if (t.end_seconds < t.start_seconds - kEps) {
      std::ostringstream os;
      os << "transfer of " << OpLabel(graph, t.producer)
         << " has regressing time [" << t.start_seconds << ", "
         << t.end_seconds << "]";
      add.Add("device-monotonic", os.str());
    }
    if (producer->device != t.src) {
      add.Add("transfer-endpoints",
              "transfer of " + OpLabel(graph, t.producer) + " departs from " +
                  std::to_string(t.src) + " but the producer ran on " +
                  std::to_string(producer->device));
    }
    if (t.start_seconds < producer->end_seconds - kEps) {
      std::ostringstream os;
      os << "transfer of " << OpLabel(graph, t.producer) << " departs at "
         << t.start_seconds << " before the producer finishes at "
         << producer->end_seconds;
      add.Add("transfer-before-producer", os.str());
    }
    arrival[{t.producer, t.dst, t.bytes}] = t.end_seconds;
  }

  // --- Precedence: an op starts only after all predecessors complete and
  // all inbound cross-device tensors have arrived.
  for (const ScheduledOp& rec : result.schedule) {
    for (auto ei : graph.in_edges(rec.op)) {
      const graph::Edge& e = graph.edges()[static_cast<std::size_t>(ei)];
      const ScheduledOp* pred = by_op[static_cast<std::size_t>(e.src)];
      if (pred->device == rec.device) {
        if (rec.start_seconds < pred->end_seconds - kEps) {
          std::ostringstream os;
          os << OpLabel(graph, rec.op) << " starts at " << rec.start_seconds
             << " before its predecessor " << OpLabel(graph, e.src)
             << " finishes at " << pred->end_seconds;
          add.Add("precedence", os.str());
        }
        continue;
      }
      const auto it = arrival.find({e.src, rec.device, e.bytes});
      if (it == arrival.end()) {
        add.Add("transfer-missing",
                OpLabel(graph, rec.op) + " consumes " + OpLabel(graph, e.src) +
                    " across devices but no transfer to device " +
                    std::to_string(rec.device) + " was recorded");
        continue;
      }
      if (rec.start_seconds < it->second - kEps) {
        std::ostringstream os;
        os << OpLabel(graph, rec.op) << " starts at " << rec.start_seconds
           << " before its input from " << OpLabel(graph, e.src)
           << " arrives at " << it->second;
        add.Add("precedence", os.str());
      }
    }
  }

  // --- Channel ordering: transfers sharing a contention channel serialize.
  std::map<int, std::vector<const ScheduledTransfer*>> per_channel;
  for (const ScheduledTransfer& t : result.transfers) {
    per_channel[cluster.link_channel(t.src, t.dst)].push_back(&t);
  }
  for (auto& [channel, transfers] : per_channel) {
    std::sort(transfers.begin(), transfers.end(),
              [](const ScheduledTransfer* a, const ScheduledTransfer* b) {
                if (a->start_seconds != b->start_seconds) {
                  return a->start_seconds < b->start_seconds;
                }
                return a->producer < b->producer;
              });
    for (std::size_t i = 1; i < transfers.size(); ++i) {
      if (transfers[i]->start_seconds <
          transfers[i - 1]->end_seconds - kEps) {
        std::ostringstream os;
        os << "transfers of " << OpLabel(graph, transfers[i - 1]->producer)
           << " and " << OpLabel(graph, transfers[i]->producer)
           << " overlap on channel " << channel;
        add.Add("transfer-channel-overlap", os.str());
      }
    }
  }

  // --- Aggregate accounting: totals must equal what the timeline shows.
  std::int64_t bytes_total = 0;
  double max_transfer_end = 0.0;
  for (const ScheduledTransfer& t : result.transfers) {
    bytes_total += t.bytes;
    max_transfer_end = std::max(max_transfer_end, t.end_seconds);
  }
  if (result.num_transfers != static_cast<int>(result.transfers.size())) {
    add.Add("transfer-accounting",
            "num_transfers=" + std::to_string(result.num_transfers) +
                " but " + std::to_string(result.transfers.size()) +
                " transfers recorded");
  }
  if (result.transfer_bytes_total != bytes_total) {
    add.Add("transfer-accounting",
            "transfer_bytes_total=" +
                std::to_string(result.transfer_bytes_total) +
                " but the timeline moves " + std::to_string(bytes_total));
  }
  double max_end = 0.0;
  std::vector<double> busy(static_cast<std::size_t>(num_devices), 0.0);
  for (const ScheduledOp& rec : result.schedule) {
    max_end = std::max(max_end, rec.end_seconds);
    busy[static_cast<std::size_t>(rec.device)] +=
        rec.end_seconds - rec.start_seconds;
  }
  const double time_tol = kEps + 1e-6 * std::max(1.0, max_end);
  if (std::abs(result.step_seconds - max_end) > time_tol) {
    std::ostringstream os;
    os << "step_seconds=" << result.step_seconds
       << " but the last op finishes at " << max_end;
    add.Add("step-accounting", os.str());
  }
  if (max_transfer_end > max_end + time_tol) {
    std::ostringstream os;
    os << "a transfer arrives at " << max_transfer_end
       << " after the last op finishes at " << max_end
       << " — its consumer never ran";
    add.Add("step-accounting", os.str());
  }
  for (int d = 0; d < num_devices; ++d) {
    const double reported =
        result.device_busy_seconds[static_cast<std::size_t>(d)];
    if (std::abs(reported - busy[static_cast<std::size_t>(d)]) > time_tol) {
      std::ostringstream os;
      os << "device " << d << " busy_seconds=" << reported
         << " but scheduled ops sum to " << busy[static_cast<std::size_t>(d)];
      add.Add("busy-accounting", os.str());
    }
  }

  // --- Memory conservation: replay the liveness accounting from the
  // recorded timeline and require the reported per-device bytes to match
  // exactly (the replay mirrors the simulator's touch sequence
  // bit-for-bit, so any mismatch is a leak or double-count).
  if (!options.track_memory ||
      result.device_peak_bytes.size() !=
          static_cast<std::size_t>(num_devices)) {
    return report;
  }
  std::vector<std::vector<LiveInterval>> intervals(
      static_cast<std::size_t>(num_devices));
  std::map<std::pair<graph::OpId, DeviceId>, std::size_t> live_slot;
  auto touch = [&](graph::OpId producer, DeviceId device, double start,
                   double end, std::int64_t bytes) {
    if (bytes <= 0) return;
    const auto key = std::make_pair(producer, device);
    const auto it = live_slot.find(key);
    if (it == live_slot.end()) {
      live_slot.emplace(key, intervals[static_cast<std::size_t>(device)].size());
      intervals[static_cast<std::size_t>(device)].push_back(
          LiveInterval{start, end, bytes});
    } else {
      auto& iv = intervals[static_cast<std::size_t>(device)][it->second];
      iv.start = std::min(iv.start, start);
      iv.end = std::max(iv.end, end);
    }
  };
  std::set<std::tuple<graph::OpId, DeviceId, std::int64_t>> transfer_seen;
  for (const ScheduledOp& rec : result.schedule) {
    touch(rec.op, rec.device, rec.end_seconds, rec.end_seconds,
          graph.op(rec.op).output_bytes());
    for (auto ei : graph.out_edges(rec.op)) {
      const graph::Edge& e = graph.edges()[static_cast<std::size_t>(ei)];
      const DeviceId dst_dev = placement.device(e.dst);
      if (dst_dev == rec.device) continue;
      if (!transfer_seen.insert({rec.op, dst_dev, e.bytes}).second) continue;
      const auto it = arrival.find({rec.op, dst_dev, e.bytes});
      if (it != arrival.end()) {
        touch(rec.op, dst_dev, it->second, it->second, e.bytes);
      }
    }
    for (auto ei : graph.in_edges(rec.op)) {
      const graph::Edge& e = graph.edges()[static_cast<std::size_t>(ei)];
      touch(e.src, rec.device, rec.start_seconds, rec.end_seconds,
            placement.device(e.src) == rec.device
                ? graph.op(e.src).output_bytes()
                : e.bytes);
    }
  }
  bool any_over_capacity = false;
  DeviceId first_over_capacity = -1;
  for (int d = 0; d < num_devices; ++d) {
    std::int64_t params = 0;
    for (graph::OpId op = 0; op < num_ops; ++op) {
      if (placement.device(op) == d) params += graph.op(op).param_bytes;
    }
    if (result.device_param_bytes[static_cast<std::size_t>(d)] != params) {
      add.Add("memory-accounting",
              "device " + std::to_string(d) + " reports " +
                  std::to_string(result.device_param_bytes[
                      static_cast<std::size_t>(d)]) +
                  " param bytes but placed ops hold " +
                  std::to_string(params));
    }
    const std::int64_t activation_peak =
        PeakLiveBytes(std::move(intervals[static_cast<std::size_t>(d)]));
    const std::int64_t peak =
        params + static_cast<std::int64_t>(
                     static_cast<double>(activation_peak) *
                     options.memory.activation_overhead);
    const std::int64_t reported =
        result.device_peak_bytes[static_cast<std::size_t>(d)];
    if (reported != peak) {
      add.Add("memory-accounting",
              "device " + std::to_string(d) + " reports peak " +
                  std::to_string(reported) + " bytes but the liveness "
                  "replay allocates " + std::to_string(peak) +
                  " (params " + std::to_string(params) + " + activations " +
                  std::to_string(activation_peak) + ")");
    }
    if (peak > cluster.device(d).memory_bytes) {
      any_over_capacity = true;
      if (first_over_capacity < 0) first_over_capacity = d;
    }
  }
  if (result.oom && !any_over_capacity) {
    add.Add("oom-consistency",
            "result reports OOM on device " +
                std::to_string(result.oom_device) +
                " but no device exceeds its capacity");
  } else if (!result.oom && any_over_capacity) {
    add.Add("oom-consistency",
            "device " + std::to_string(first_over_capacity) +
                " exceeds its capacity but the result does not report OOM");
  } else if (result.oom && result.oom_device != first_over_capacity) {
    add.Add("oom-consistency",
            "result reports OOM on device " +
                std::to_string(result.oom_device) +
                " but the first device over capacity is " +
                std::to_string(first_over_capacity));
  }
  return report;
}

}  // namespace eagle::sim
