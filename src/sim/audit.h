// Schedule auditor: independent verification of a recorded simulator
// schedule against the discrete-event invariants the whole RL signal
// rests on (the paper's reward is the simulated per-step time, §IV-C).
//
// AuditSchedule re-derives, from the recorded op/transfer timeline alone:
//   - per-device event-time monotonicity (a device runs one op at a time,
//     times never regress),
//   - precedence (no op starts before every predecessor has finished and
//     every inbound cross-device transfer has arrived),
//   - transfer channel ordering (transfers sharing a contention channel
//     serialize; a transfer never departs before its producer finishes),
//   - memory-accounting conservation (the liveness replay reproduces the
//     reported per-device param/peak bytes exactly, and the OOM flag is
//     consistent with device capacities).
//
// In EAGLE_AUDIT builds (default for Debug and sanitizer configs — see
// the top-level CMakeLists) ExecutionSimulator::Run() records its own
// schedule, audits it after every simulated execution, and aborts via
// EAGLE_CHECK on any violation, so a scheduling bug can never silently
// corrupt a training run. The auditor itself is always compiled so tests
// can drive it against hand-built broken schedules.
#pragma once

#include <string>
#include <vector>

#include "graph/op_graph.h"
#include "sim/device.h"
#include "sim/placement.h"
#include "sim/simulator.h"

namespace eagle::sim {

struct AuditViolation {
  std::string invariant;  // "device-monotonic", "precedence", ...
  std::string detail;
};

struct AuditReport {
  std::vector<AuditViolation> violations;
  // Violations beyond the reporting cap (the count still reflects them).
  int dropped = 0;

  bool ok() const { return violations.empty() && dropped == 0; }
  std::string ToString() const;
};

// Audits `result` (which must carry a recorded schedule — run the
// simulator with SimulatorOptions::record_schedule) against `graph`,
// `cluster` and the normalized `placement` it was produced from.
// `options` gates the memory checks (skipped when track_memory is off,
// matching what the simulator accounted).
AuditReport AuditSchedule(const StepResult& result,
                          const graph::OpGraph& graph,
                          const ClusterSpec& cluster,
                          const Placement& placement,
                          const SimulatorOptions& options);

}  // namespace eagle::sim
