// Reusable per-run scratch state for ExecutionSimulator.
//
// One discrete-event run used to allocate a dozen vectors, two hash maps,
// and a priority_queue per device — every single call. A SimWorkspace
// keeps all of that storage alive between runs and replaces the hash maps
// with flat arrays indexed by `op * num_devices + device`, stamped with a
// per-run epoch counter so "reset" is bumping one integer instead of
// clearing O(ops × devices) entries. After the first run on a given graph
// shape the simulator performs no heap allocation at all (beyond the
// caller-visible StepResult).
//
// Workspaces are leased from a support::ResourcePool owned by the
// simulator, because Run() is const and called concurrently by the
// evaluation service; each in-flight run gets a private workspace.
//
// This header is, together with nn/arena.h, the sanctioned allocation
// layer for the hot path (eagle-lint HP01): simulator.cpp itself must not
// touch new/malloc/unordered_map.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/op_graph.h"
#include "sim/device.h"
#include "sim/memory_model.h"

namespace eagle::sim {

// Ready-queue entry: ops ready earlier run first; ties broken by longer
// downstream critical path, then by id for determinism. The comparator is
// a strict total order, so any binary heap pops entries in exactly the
// same sequence — which is what lets the workspace drive std::push_heap /
// std::pop_heap over recycled vectors and still reproduce the historical
// std::priority_queue schedule bit-for-bit.
struct ReadyOp {
  double ready_time;
  int priority;
  graph::OpId op;

  bool operator>(const ReadyOp& other) const {
    if (ready_time != other.ready_time) return ready_time > other.ready_time;
    if (priority != other.priority) return priority < other.priority;
    return op > other.op;
  }
};

struct SimWorkspace {
  // A flat (op × device) entry is live only when its stamp equals `epoch`;
  // everything else is logically reset. Prepare() bumps the epoch.
  std::uint32_t epoch = 0;

  // Per-op scheduling state.
  std::vector<std::uint32_t> ready_epoch;
  std::vector<double> ready_time;
  std::vector<std::uint32_t> pending_epoch;
  std::vector<int> pending_inputs;
  std::vector<double> finish_time;

  // Per-device / per-channel availability.
  std::vector<double> device_free;
  std::vector<double> link_free;

  // Manual binary heaps (std::push_heap/pop_heap) so the backing vectors
  // survive across runs; priority_queue would own — and free — them.
  std::vector<std::vector<ReadyOp>> heaps;

  // Transfer dedup, exact key (producer, dst device, bytes): the primary
  // slot holds the first byte size shipped producer→dst this run; further
  // distinct sizes chain through the overflow pool via per-slot `next`
  // links, so a lookup walks only the sizes parked on *this* slot. (The
  // previous flat overflow vector was scanned end to end on every
  // mismatch, which made a producer feeding many distinct-size consumers
  // on one device O(out-edges × total-overflow) per run.)
  std::vector<std::uint32_t> transfer_epoch;   // op × device
  std::vector<std::int64_t> transfer_bytes;    // op × device
  std::vector<double> transfer_arrival;        // op × device
  // Head of the slot's overflow chain as index+1 into transfer_overflow
  // (0 = empty). Only meaningful while transfer_epoch[slot] == epoch, and
  // reset when the slot is stamped, so it needs no per-run clearing.
  std::vector<std::uint32_t> transfer_overflow_head;  // op × device
  struct TransferOverflow {
    std::int64_t bytes;
    double arrival;
    std::uint32_t next;  // index+1 of the next entry on this slot; 0 = end
  };
  std::vector<TransferOverflow> transfer_overflow;

  // Liveness accounting: (producer, device) -> index into
  // intervals[device], plus the interval storage itself and the event
  // scratch PeakLiveBytes sweeps over.
  std::vector<std::uint32_t> live_epoch;  // op × device
  std::vector<std::uint32_t> live_index;  // op × device
  std::vector<std::vector<LiveInterval>> intervals;
  std::vector<MemEvent> event_scratch;

  // Sizes storage for (num_ops, num_devices, num_channels) and starts a
  // fresh run epoch. O(devices + channels) when the shape is unchanged.
  void Prepare(int num_ops, int num_devices, int num_channels) {
    const std::size_t ops = static_cast<std::size_t>(num_ops);
    const std::size_t flat = ops * static_cast<std::size_t>(num_devices);
    if (ready_epoch.size() != ops || live_epoch.size() != flat) {
      ready_epoch.assign(ops, 0);
      ready_time.resize(ops);
      pending_epoch.assign(ops, 0);
      pending_inputs.resize(ops);
      finish_time.resize(ops);
      transfer_epoch.assign(flat, 0);
      transfer_bytes.resize(flat);
      transfer_arrival.resize(flat);
      transfer_overflow_head.resize(flat);
      live_epoch.assign(flat, 0);
      live_index.resize(flat);
      epoch = 0;
    }
    device_free.assign(static_cast<std::size_t>(num_devices), 0.0);
    link_free.assign(static_cast<std::size_t>(num_channels), 0.0);
    heaps.resize(static_cast<std::size_t>(num_devices));
    for (auto& h : heaps) h.clear();
    intervals.resize(static_cast<std::size_t>(num_devices));
    for (auto& v : intervals) v.clear();
    transfer_overflow.clear();
    if (++epoch == 0) {
      // 2^32 runs wrapped the stamp; restamp everything once and move on.
      std::fill(ready_epoch.begin(), ready_epoch.end(), 0u);
      std::fill(pending_epoch.begin(), pending_epoch.end(), 0u);
      std::fill(transfer_epoch.begin(), transfer_epoch.end(), 0u);
      std::fill(live_epoch.begin(), live_epoch.end(), 0u);
      epoch = 1;
    }
  }
};

}  // namespace eagle::sim
