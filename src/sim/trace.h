// Schedule-trace export and analysis.
//
// ToChromeTrace renders a recorded StepResult timeline as a Chrome
// about://tracing / Perfetto JSON file: one row per device plus one per
// active link, so placement bottlenecks (serialized devices, hot PCIe
// links) are visible at a glance.
//
// AnalyzeCriticalPath walks the recorded schedule backwards from the op
// that finishes last and attributes the step time to compute vs transfer
// vs queueing — the quantities a placement needs to trade off.
#pragma once

#include <string>
#include <vector>

#include "graph/op_graph.h"
#include "sim/simulator.h"

namespace eagle::sim {

// Requires result.schedule recorded (SimulatorOptions::record_schedule).
std::string ToChromeTrace(const StepResult& result,
                          const graph::OpGraph& graph,
                          const ClusterSpec& cluster);

struct CriticalPathReport {
  std::vector<graph::OpId> path;   // sink-first
  double compute_seconds = 0.0;    // time on-path ops spent computing
  double transfer_seconds = 0.0;   // time on-path data spent on links
  double queue_seconds = 0.0;      // waiting for a busy device/link
  std::string ToString(const graph::OpGraph& graph) const;
};

CriticalPathReport AnalyzeCriticalPath(const StepResult& result,
                                       const graph::OpGraph& graph);

}  // namespace eagle::sim
