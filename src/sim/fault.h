// Fault injection for the measurement environment.
//
// The paper's agents train against a real 4×P100 machine where sessions
// crash, devices stall and invalid placements OOM; noisy, failure-prone
// runtime measurement dominates training cost (Mirhoseini et al. 2017,
// Placeto make the same observation). The deterministic simulator hides
// all of that, so FaultInjector reintroduces it in a seed-deterministic
// way: each measurement *attempt* draws a FaultDraw that can
//
//   - crash the measurement session outright (transient failure),
//   - take a device hard-down (any placement touching it fails),
//   - slow a device's compute by a straggler factor,
//   - degrade a link channel's effective bandwidth/latency.
//
// Perf faults (stragglers, degraded links) complete the measurement but
// report inflated times; hard faults (crash, device-down) fail the
// attempt and are retried by the environment's support::RetryPolicy.
#pragma once

#include <string>
#include <vector>

#include "sim/device.h"
#include "sim/placement.h"
#include "support/rng.h"

namespace eagle::sim {

// Per-attempt fault rates. All-zero (the default) disables injection.
struct FaultProfile {
  // P(the measurement session crashes before producing a number).
  double transient_failure_rate = 0.0;
  // P(a given GPU is hard-down for this attempt).
  double device_down_rate = 0.0;
  // P(a given GPU computes slower by straggler_slowdown this attempt).
  double straggler_rate = 0.0;
  double straggler_slowdown = 2.0;
  // P(a given link channel is degraded by degraded_link_factor).
  double degraded_link_rate = 0.0;
  double degraded_link_factor = 3.0;
  // Seed of the environment's dedicated fault stream.
  std::uint64_t seed = 1234;

  bool enabled() const {
    return transient_failure_rate > 0.0 || device_down_rate > 0.0 ||
           straggler_rate > 0.0 || degraded_link_rate > 0.0;
  }

  std::string ToString() const;
};

// Parses "crash=0.1,down=0.02,straggler=0.2,slowdown=3,link=0.1,
// linkfactor=4,seed=9" (any subset, any order). A bare number is
// shorthand for "crash=x,down=x/4,straggler=x,link=x". Throws on unknown
// keys or malformed values.
FaultProfile FaultProfileFromString(const std::string& text);

// One attempt's realized faults. Scale vectors are sized to the cluster
// (per device / per link channel) with 1.0 == healthy.
struct FaultDraw {
  bool session_crash = false;
  std::vector<bool> device_down;
  std::vector<double> device_compute_scale;
  std::vector<double> link_scale;

  // True when any compute/link scale differs from 1 (the measurement
  // completes but reports degraded times).
  bool HasPerfFaults() const;
  // True when the draw prevents the measurement from completing for a
  // placement that uses `down` devices.
  bool HitsDownDevice(const Placement& placement) const;

  std::string ToString(const ClusterSpec& cluster) const;
};

// Seed-deterministic fault model over a fixed cluster. Stateless: all
// randomness comes from the caller's Rng, so the environment can
// checkpoint/restore its fault stream for crash-safe training resume.
class FaultInjector {
 public:
  FaultInjector(FaultProfile profile, const ClusterSpec& cluster);

  // Draws the faults for one measurement attempt. CPU devices are exempt
  // from down/straggler faults (the host is what launches the session).
  FaultDraw Draw(support::Rng& rng) const;

  const FaultProfile& profile() const { return profile_; }

 private:
  FaultProfile profile_;
  std::vector<bool> device_is_gpu_;
  int num_link_channels_ = 0;
};

}  // namespace eagle::sim
