// Hardened cluster-spec ingestion: StatusOr parsers for untrusted input.
//
// Clusters are first-class inputs like graphs: everything that accepts a
// *user-supplied* cluster file — bench --cluster, trace_placement
// --cluster, graph_fuzz --cluster — goes through this module. No input,
// however malformed, makes these functions throw or abort; failures come
// back as a support::Status carrying the shared graph-ingestion error
// taxonomy code and the file:line:column the problem was detected at
// (docs/GRAPH_FORMATS.md defines the codes, docs/SIMULATOR.md the
// grammar).
//
// Two formats are accepted:
//   *.ec   — a line-based text format:
//              device <name> <cpu|gpu> [gflops=] [mem_bw=] [overhead=] [mem=]
//              default_link bw=<gbps> lat=<us>
//              link <src> <dst> bw=<gbps> lat=<us> [chan=<label>] [bidir]
//   *.json — an object with "devices", optional "default_link", "links"
// Ingestion is one-way (there is no cluster writer); specs are authored
// by hand or by tools/graph_fuzz --mode=cluster-fuzz mutation seeds.
#pragma once

#include <iosfwd>
#include <string>

#include "sim/device.h"
#include "support/status.h"

namespace eagle::sim {

// Resource caps applied while parsing, before validation: a hostile spec
// cannot balloon the O(n^2) link matrix before Validate() runs.
struct ClusterLimits {
  int max_devices = 512;
};

struct ClusterIngestOptions {
  ClusterLimits limits;
  // Run ClusterSpec::Validate() on the parsed cluster (rate/cost sanity,
  // unconfigured-link detection). Off only for tools that want to
  // inspect a broken spec anyway.
  bool validate = true;
  // Name used in diagnostics ("<input>" for in-memory strings;
  // ImportClusterFile overrides it with the path).
  std::string source_name = "<input>";
};

// Parses the .ec text format. Never throws on malformed input.
support::StatusOr<ClusterSpec> ParseTextCluster(
    std::istream& in, const ClusterIngestOptions& opts = {});
support::StatusOr<ClusterSpec> ParseTextCluster(
    const std::string& text, const ClusterIngestOptions& opts = {});

// Parses the JSON cluster format. Never throws on malformed input.
// Syntax errors carry line:column derived from the JSON parser's byte
// offset; semantic errors name the offending devices[i]/links[i] entry.
support::StatusOr<ClusterSpec> ClusterFromJson(
    const std::string& text, const ClusterIngestOptions& opts = {});

// Opens `path`, dispatches on its suffix (".json" → ClusterFromJson,
// anything else → ParseTextCluster), and uses the path as the diagnostic
// source name. kIo when the file cannot be opened or read.
support::StatusOr<ClusterSpec> ImportClusterFile(
    const std::string& path, const ClusterIngestOptions& opts = {});

// Resolves a --cluster CLI value: "" or "default" → MakeDefaultCluster();
// "2node8" → MakeTwoNodeNvlinkIbCluster(); "mixed" →
// MakeMixedSpeedCluster(); anything else is treated as a path and goes
// through ImportClusterFile.
support::StatusOr<ClusterSpec> ResolveCluster(
    const std::string& spec, const ClusterIngestOptions& opts = {});

}  // namespace eagle::sim
