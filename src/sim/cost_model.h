// Analytical per-op and per-transfer cost model.
//
// Compute: roofline-style max(flops/rate, bytes/mem_bw) plus a fixed
// dispatch overhead — small ops are overhead-dominated (why Inception-V3
// prefers a single device), large matmuls are compute-dominated, large
// elementwise ops are bandwidth-dominated.
// Transfers: latency + bytes/bandwidth on the directed link.
#pragma once

#include "graph/op_def.h"
#include "sim/device.h"

namespace eagle::sim {

class CostModel {
 public:
  explicit CostModel(const ClusterSpec& cluster) : cluster_(&cluster) {}

  // Execution time of `op` on `device`, in seconds.
  double ComputeSeconds(const graph::OpDef& op, DeviceId device) const;

  // Time to move `bytes` from `src` to `dst`, in seconds (0 if same).
  double TransferSeconds(DeviceId src, DeviceId dst,
                         std::int64_t bytes) const;

  const ClusterSpec& cluster() const { return *cluster_; }

 private:
  const ClusterSpec* cluster_;
};

}  // namespace eagle::sim
