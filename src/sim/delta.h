// Delta re-simulation: incremental re-evaluation of placement moves.
//
// RL placement training evaluates long sequences of placements where
// consecutive candidates differ in one op (Placeto-style moves) or one
// colocation group. A full discrete-event run re-derives the entire
// schedule from scratch every time; a DeltaContext instead caches the
// previous run's schedule (per-op start/finish, per-device op order and
// busy prefix sums, creation-ordered transfers with their channel
// timelines, liveness intervals) and, when the next placement differs in
// at most DeltaOptions::max_moved_ops ops, invalidates only the affected
// cone and replays that frontier against the cached timelines.
//
// The invalidation cone is closed under three rules:
//   1. downstream closure — every consumer (transitively) of an
//      invalidated op is invalidated;
//   2. device timelines — once a device's timeline is disturbed at time
//      T, every cached op on that device starting at or after T is
//      invalidated (list scheduling serializes a device, so everything
//      behind a disturbance can shift);
//   3. link channels — once a channel is disturbed at time T, every
//      cached transfer starting at or after T is invalidated, along with
//      all ops that consumed it (send/recv dedup means one transfer can
//      feed many consumers).
// Disturbance times are sound lower bounds (LB) on an invalidated op's
// new ready time, computed in dependency order from kept producers'
// cached finishes — never from the op's cached start, because a move can
// pull an op *earlier* on its new device.
//
// The replay then re-runs the event loop restricted to invalidated ops,
// seeded with the kept prefixes of every device/channel timeline, and
// merges kept and replayed events back into one schedule. Because the
// full simulator's pick order is reconstructible from
// (start, -priority, device) — compute times are strictly positive, so a
// device's picks strictly increase in start time — the merged schedule,
// and every floating-point accumulation over it, is bit-identical to a
// fresh full run. That property is enforced, not assumed: under
// EAGLE_AUDIT every delta result is compared field-for-field (exact
// equality, doubles included) against a fresh full run, and
// tools/graph_fuzz --mode=delta hammers random move sequences in CI.
//
// Fallbacks to a full run (which refreshes the context): first use,
// fault scale vectors differing from the cached run, more than
// max_moved_ops moved ops, a cone exceeding cutover_fraction of the
// graph, or a graph containing zero-cost ops (which break the
// strictly-increasing-start argument the merge relies on).
//
// This header is part of the sanctioned hot-path allocation layer
// (eagle-lint HP01 covers delta.*): all replay scratch lives in
// epoch-stamped flat vectors inside the DeltaContext, so a warm context
// performs no heap allocation on the delta path.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "graph/op_graph.h"
#include "sim/device.h"
#include "sim/memory_model.h"
#include "sim/sim_workspace.h"

namespace eagle::sim {

class CostModel;
class Placement;
struct FaultDraw;
struct SimulatorOptions;
struct StepResult;

// Knobs for the delta path, embedded in SimulatorOptions::delta.
struct DeltaOptions {
  // Master switch. Off by default at the simulator level; the placement
  // environment turns it on (results are bit-identical either way).
  bool enabled = false;
  // A placement differing in more ops than this falls back to a full run
  // (covers group moves: a collapsed colocation group counts per op).
  int max_moved_ops = 32;
  // Fall back once the invalidation cone exceeds this fraction of the
  // graph — past that point replay costs as much as a full run.
  double cutover_fraction = 0.35;
  // Every fallback still pays for a recorded run plus a cache refresh in
  // the hope that the *next* placement lands nearby. On move sequences
  // that keep missing (every eval a fresh distant placement), that hope
  // is a steady-state tax, so after this many consecutive fallbacks the
  // context backs off: it serves `fallback_backoff_runs` plain
  // full runs (no recording, no refresh, near-zero overhead), then
  // re-primes and tries again. 0 disables the backoff.
  int fallback_backoff_threshold = 3;
  int fallback_backoff_runs = 16;
};

// Running telemetry for one context (mirrored into the sim.delta.*
// metrics counters by the simulator).
struct DeltaStats {
  std::int64_t hits = 0;        // runs served incrementally
  std::int64_t fallbacks = 0;   // runs that went through the full path
  std::int64_t cone_ops = 0;    // total invalidated ops across hits
};

// One cached cross-device transfer from the previous run, in creation
// order. `ordinal` is the creating edge's position within the producer's
// out-edge list — the intra-producer tiebreak when kept and replayed
// transfers are merged back into creation order.
struct DeltaTransfer {
  graph::OpId producer = graph::kInvalidOp;
  DeviceId src = -1;
  DeviceId dst = -1;
  std::int64_t bytes = 0;
  std::int32_t ordinal = 0;
  std::int32_t channel = 0;
  double xfer_start = 0.0;
  double arrival = 0.0;
  double xfer_seconds = 0.0;
};

// One cached liveness interval, keyed by its producing op so the memory
// patcher can find and rewrite exactly the slots a move disturbed.
struct DeltaInterval {
  graph::OpId producer = graph::kInvalidOp;
  LiveInterval iv;
};

// Cached previous schedule + replay scratch. Leased from a ResourcePool
// owned by the simulator (one per in-flight evaluation worker, so each
// worker's chain of consecutive placements stays warm in "its" context).
// All state is plain vectors; per-run resets are epoch stamps.
class DeltaContext {
 public:
  DeltaStats stats;
  // Fallback backoff (see DeltaOptions::fallback_backoff_threshold):
  // consecutive fallbacks since the last hit, and how many plain runs
  // remain before the cache is re-primed. Managed by RunWithContext.
  int consecutive_fallbacks = 0;
  int backoff_remaining = 0;

  // ---- cached previous run (valid only when `valid` is set) ----
  bool valid = false;
  int num_ops = 0;
  int num_devices = 0;
  int num_channels = 0;
  bool track_memory = false;
  // Graphs with any zero-cost op are permanently ineligible (see header
  // comment); detected at refresh time.
  bool zero_cost_ops = false;
  // Fault scales the cached run was taken under (empty == no faults).
  bool had_faults = false;
  std::vector<double> fault_compute;
  std::vector<double> fault_link;

  std::vector<DeviceId> devices;      // cached placement
  std::vector<double> start;          // per op
  std::vector<double> finish;         // per op
  std::vector<double> compute;        // per op (cost model × fault scale)
  std::vector<graph::OpId> pick_order;  // global schedule order
  std::vector<std::vector<graph::OpId>> dev_ops;  // per device, in order
  // dev_busy[d][i] = device d's busy-seconds sum after its (i+1)-th op,
  // accumulated in schedule order so a kept prefix reproduces the full
  // run's floating-point sum exactly.
  std::vector<std::vector<double>> dev_busy;
  std::vector<DeltaTransfer> transfers;              // creation order
  std::vector<std::vector<std::int32_t>> ch_transfers;  // per channel
  std::vector<std::int64_t> param_bytes;  // per device
  std::vector<std::int64_t> peak_bytes;   // per device
  bool oom = false;
  DeviceId oom_device = -1;
  double step_seconds = 0.0;
  double transfer_seconds_total = 0.0;
  std::int64_t transfer_bytes_total = 0;
  int num_transfers = 0;
  std::vector<std::vector<DeltaInterval>> intervals;  // per device
  // (op × device) -> index into intervals[device]; stamped with `generation`.
  std::vector<std::uint32_t> slot_gen;
  std::vector<std::uint32_t> slot_index;
  std::uint32_t generation = 0;
  // Cached-transfer dedup index over the same flat slots: (producer, dst
  // device, bytes) → index into `transfers`. The closure uses it to cut a
  // channel losing a transfer at the transfer's cached start (not at its
  // producer's possibly much earlier finish), and to skip cuts entirely
  // when dedup keeps the transfer bit-identical. Rebuilt whenever
  // `transfers` changes.
  std::vector<std::uint32_t> ct_gen;
  std::vector<std::int64_t> ct_bytes;
  std::vector<std::uint32_t> ct_index;
  std::vector<std::uint32_t> ct_overflow_head;
  struct CtOverflow {
    std::int64_t bytes;
    std::uint32_t index;
    std::uint32_t next;
  };
  std::vector<CtOverflow> ct_overflow;
  std::uint32_t ct_generation = 0;

  // ---- per-run replay scratch (epoch-stamped with run_epoch) ----
  std::uint32_t run_epoch = 0;
  std::vector<std::uint32_t> invalid_epoch;   // per op
  std::vector<std::uint32_t> lb_epoch;        // per op
  std::vector<double> lb;                     // per op (new start lower bound)
  std::vector<double> lb_finish;              // per op (lb + new compute)
  std::vector<graph::OpId> worklist;
  std::vector<double> t_dev;                  // per device
  std::vector<double> t_ch;                   // per channel
  std::vector<std::int32_t> kept_dev;         // kept prefix length / device
  std::vector<std::int32_t> kept_ch;          // kept prefix length / channel
  std::vector<std::uint32_t> ready_epoch;     // per op
  std::vector<double> ready_time;             // per op
  std::vector<std::uint32_t> pending_epoch;   // per op
  std::vector<int> pending_inputs;            // per op
  std::vector<std::vector<ReadyOp>> heaps;    // per device
  std::vector<double> device_free;            // per device
  std::vector<double> link_free;              // per channel
  // Replay-time transfer dedup (mirrors SimWorkspace's): flat op × device
  // primary slots plus slot-local overflow chains.
  std::vector<std::uint32_t> rt_epoch;
  std::vector<std::int64_t> rt_bytes;
  std::vector<double> rt_arrival;
  std::vector<std::uint32_t> rt_overflow_head;
  struct RtOverflow {
    std::int64_t bytes;
    double arrival;
    std::uint32_t next;
  };
  std::vector<RtOverflow> rt_overflow;
  // Edges whose (kept producer → invalid consumer) transfer must be
  // re-emitted at the producer's cached pick position.
  std::vector<std::uint32_t> edge_unresolved_epoch;  // per edge
  struct Emission {
    double pick_start;
    int priority;
    DeviceId device;
    graph::OpId producer;
  };
  std::vector<Emission> emissions;
  std::vector<graph::OpId> replay_pick_order;
  std::vector<DeltaTransfer> replay_transfers;
  std::vector<DeltaTransfer> merged_transfers;
  std::vector<graph::OpId> merged_pick_order;
  std::vector<std::uint32_t> slot_dirty_epoch;  // op × device candidates
  std::vector<std::int64_t> slot_candidates;    // flat slot ids
  std::vector<unsigned char> dev_dirty;         // per device
  std::vector<graph::OpId> moved;               // ops whose device changed
  // Cached activation peak (pre-overhead) per device so a param-only
  // change skips the sweep.
  std::vector<std::int64_t> act_bytes;
  // Per-producer (dst device, bytes) dedup scratch for ordinal/interval
  // reconstruction, and the plain-LiveInterval copy PeakLiveBytes sweeps.
  std::vector<std::pair<DeviceId, std::int64_t>> seen_bytes;
  std::vector<LiveInterval> iv_scratch;
  std::vector<MemEvent> event_scratch;
};

// Everything the delta engine needs from the owning simulator, bundled so
// simulator.cpp stays the only caller.
struct DeltaRunInputs {
  const graph::OpGraph* graph = nullptr;
  const ClusterSpec* cluster = nullptr;
  const CostModel* cost_model = nullptr;
  const SimulatorOptions* options = nullptr;
  const std::vector<int>* critical_priority = nullptr;
  const std::vector<graph::OpId>* topo = nullptr;
};

// Attempts an incremental run of `placement` against the cached schedule
// in `ctx`. On success fills `out` (including schedule/transfers when
// `record_schedule`), advances the cache to the new schedule, and returns
// true. Returns false when the run must fall back to the full path (cold
// context, fault mismatch, too many moves, cone past cutover); the caller
// then performs a full recorded run and hands it to RefreshDeltaContext.
bool TryDeltaRun(const DeltaRunInputs& in, const Placement& placement,
                 const FaultDraw* faults, bool record_schedule,
                 DeltaContext& ctx, StepResult* out);

// Rebuilds the cache from a full run's recorded result (`full` must carry
// schedule + transfers, i.e. come from a record_schedule run).
void RefreshDeltaContext(const DeltaRunInputs& in, const Placement& placement,
                         const FaultDraw* faults, const StepResult& full,
                         DeltaContext& ctx);

// Field-for-field comparison of two step results, exact on doubles.
// Returns an empty string when identical, else a human-readable diff of
// the first mismatching field. Shared by the EAGLE_AUDIT delta check,
// tools/graph_fuzz --mode=delta and the unit tests.
std::string DiffStepResults(const StepResult& a, const StepResult& b);

}  // namespace eagle::sim
