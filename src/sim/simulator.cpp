#include "sim/simulator.h"

#include <algorithm>
#include <functional>
#include <sstream>

#include "sim/audit.h"
#include "support/check.h"
#include "support/metrics.h"

namespace eagle::sim {

namespace {

// Telemetry observers: run/event totals for the metrics registry. The
// simulator's own results never read these back.
struct SimMetrics {
  support::metrics::Counter* runs = support::metrics::GetCounter("sim.runs");
  support::metrics::Counter* events =
      support::metrics::GetCounter("sim.events");
};

SimMetrics& Metrics() {
  static SimMetrics m;
  return m;
}

// Delta-path observers: how often the incremental path served a run, how
// often it fell back to the full loop, and how many ops it re-simulated.
struct DeltaPathMetrics {
  support::metrics::Counter* hits =
      support::metrics::GetCounter("sim.delta.hits");
  support::metrics::Counter* fallbacks =
      support::metrics::GetCounter("sim.delta.fallbacks");
  support::metrics::Counter* cone_ops =
      support::metrics::GetCounter("sim.delta.cone_ops");
};

DeltaPathMetrics& DeltaMetrics() {
  static DeltaPathMetrics m;
  return m;
}

}  // namespace

std::string StepResult::ToString(const ClusterSpec& cluster) const {
  std::ostringstream os;
  if (oom) {
    os << "OOM on " << cluster.device(oom_device).name << " ("
       << static_cast<double>(
              device_peak_bytes[static_cast<std::size_t>(oom_device)]) /
              (1 << 30)
       << " GB > "
       << static_cast<double>(cluster.device(oom_device).memory_bytes) /
              (1 << 30)
       << " GB)";
    return os.str();
  }
  os << "step " << step_seconds << " s; busy:";
  for (int d = 0; d < cluster.num_devices(); ++d) {
    os << " " << cluster.device(d).name << "="
       << device_busy_seconds[static_cast<std::size_t>(d)] << "s/"
       << static_cast<double>(device_peak_bytes[static_cast<std::size_t>(d)]) /
              (1 << 30)
       << "GB";
  }
  os << "; transfers " << num_transfers << " moving "
     << static_cast<double>(transfer_bytes_total) / (1 << 30) << " GB";
  return os.str();
}

ExecutionSimulator::ExecutionSimulator(const graph::OpGraph& graph,
                                       const ClusterSpec& cluster,
                                       SimulatorOptions options)
    : graph_(&graph),
      cluster_(&cluster),
      cost_model_(cluster),
      options_(options),
      topo_(graph.TopologicalOrder()),
      critical_priority_(static_cast<std::size_t>(graph.num_ops()), 0) {
  // A degenerate spec (zero/negative/non-finite rates) would make the cost
  // model emit inf/NaN step times that poison every comparison downstream;
  // refuse it up front with the offending device/link named.
  const support::Status cluster_status = cluster.Validate();
  EAGLE_CHECK_MSG(cluster_status.ok(),
                  "invalid cluster spec: " << cluster_status.ToString());
  // Downstream critical-path length (in ops) as static priority.
  for (auto it = topo_.rbegin(); it != topo_.rend(); ++it) {
    const graph::OpId u = *it;
    int best = 0;
    for (auto ei : graph.out_edges(u)) {
      const graph::OpId v = graph.edges()[static_cast<std::size_t>(ei)].dst;
      best = std::max(best, critical_priority_[static_cast<std::size_t>(v)] + 1);
    }
    critical_priority_[static_cast<std::size_t>(u)] = best;
  }
}

StepResult ExecutionSimulator::Run(const Placement& placement,
                                   const FaultDraw* faults) const {
  if (options_.delta.enabled) {
    // LIFO pool: a single-threaded caller gets the same context back every
    // run, so consecutive placements stay warm against its cached schedule.
    auto lease = delta_contexts_.Acquire();
    return RunWithContext(placement, *lease, faults);
  }
#ifdef EAGLE_AUDIT
  // Audit builds always record the timeline so every simulated execution
  // can be verified; the recording is dropped again unless the caller
  // asked for it, keeping the result shape identical to a release build.
  StepResult result = RunInternal(placement, faults, /*record_schedule=*/true);
  {
    EAGLE_SPAN("sim.audit");
    const AuditReport audit =
        AuditSchedule(result, *graph_, *cluster_, placement, options_);
    EAGLE_CHECK_MSG(audit.ok(), "schedule audit failed:\n" << audit.ToString());
  }
  if (!options_.record_schedule) {
    result.schedule.clear();
    result.schedule.shrink_to_fit();
    result.transfers.clear();
    result.transfers.shrink_to_fit();
  }
  return result;
#else
  return RunInternal(placement, faults, options_.record_schedule);
#endif
}

StepResult ExecutionSimulator::RunWithContext(const Placement& placement,
                                              DeltaContext& ctx,
                                              const FaultDraw* faults) const {
  const DeltaRunInputs inputs{graph_,   cluster_,            &cost_model_,
                              &options_, &critical_priority_, &topo_};
  StepResult result;
  // ctx.stats.cone_ops is a running total; the counter wants this run's
  // increment only.
  const std::int64_t cone_before = ctx.stats.cone_ops;
#ifdef EAGLE_AUDIT
  // Audit builds double-check every delta hit against a fresh full run:
  // field-for-field, doubles compared exactly. The full result (already
  // audited against the schedule invariants) is what gets returned, so a
  // latent delta bug can never leak into audited training results.
  if (TryDeltaRun(inputs, placement, faults, /*record_schedule=*/true, ctx,
                  &result)) {
    StepResult full = RunInternal(placement, faults, /*record_schedule=*/true);
    {
      EAGLE_SPAN("sim.audit");
      const AuditReport audit =
          AuditSchedule(full, *graph_, *cluster_, placement, options_);
      EAGLE_CHECK_MSG(audit.ok(),
                      "schedule audit failed:\n" << audit.ToString());
    }
    const std::string diff = DiffStepResults(result, full);
    EAGLE_CHECK_MSG(diff.empty(),
                    "delta result diverged from full run: " << diff);
    Metrics().runs->Increment();
    Metrics().events->Increment(graph_->num_ops() + result.num_transfers);
    DeltaMetrics().hits->Increment();
    DeltaMetrics().cone_ops->Increment(ctx.stats.cone_ops - cone_before);
    ctx.consecutive_fallbacks = 0;
    ctx.backoff_remaining = 0;
    if (!options_.record_schedule) {
      full.schedule.clear();
      full.schedule.shrink_to_fit();
      full.transfers.clear();
      full.transfers.shrink_to_fit();
    }
    return full;
  }
#else
  if (TryDeltaRun(inputs, placement, faults, options_.record_schedule, ctx,
                  &result)) {
    Metrics().runs->Increment();
    Metrics().events->Increment(graph_->num_ops() + result.num_transfers);
    DeltaMetrics().hits->Increment();
    DeltaMetrics().cone_ops->Increment(ctx.stats.cone_ops - cone_before);
    ctx.consecutive_fallbacks = 0;
    ctx.backoff_remaining = 0;
    return result;
  }
#endif
  ctx.stats.fallbacks++;
  DeltaMetrics().fallbacks->Increment();
  if (ctx.backoff_remaining > 0) {
    // Backed off: the cache kept missing, so skip the record+refresh tax
    // and serve a plain full run until the backoff budget runs out.
    --ctx.backoff_remaining;
    result = RunInternal(placement, faults,
#ifdef EAGLE_AUDIT
                         /*record_schedule=*/true
#else
                         options_.record_schedule
#endif
    );
#ifdef EAGLE_AUDIT
    {
      EAGLE_SPAN("sim.audit");
      const AuditReport audit =
          AuditSchedule(result, *graph_, *cluster_, placement, options_);
      EAGLE_CHECK_MSG(audit.ok(),
                      "schedule audit failed:\n" << audit.ToString());
    }
    if (!options_.record_schedule) {
      result.schedule.clear();
      result.schedule.shrink_to_fit();
      result.transfers.clear();
      result.transfers.shrink_to_fit();
    }
#endif
    return result;
  }
  // Fallback: a recorded full run both serves this evaluation and
  // refreshes the cache for the next one. RunInternal bumps sim.runs.
  result = RunInternal(placement, faults, /*record_schedule=*/true);
#ifdef EAGLE_AUDIT
  {
    EAGLE_SPAN("sim.audit");
    const AuditReport audit =
        AuditSchedule(result, *graph_, *cluster_, placement, options_);
    EAGLE_CHECK_MSG(audit.ok(), "schedule audit failed:\n" << audit.ToString());
  }
#endif
  RefreshDeltaContext(inputs, placement, faults, result, ctx);
  if (options_.delta.fallback_backoff_threshold > 0 &&
      ++ctx.consecutive_fallbacks >= options_.delta.fallback_backoff_threshold) {
    ctx.backoff_remaining = options_.delta.fallback_backoff_runs;
    ctx.consecutive_fallbacks = 0;
  }
  if (!options_.record_schedule) {
    result.schedule.clear();
    result.schedule.shrink_to_fit();
    result.transfers.clear();
    result.transfers.shrink_to_fit();
  }
  return result;
}

void ExecutionSimulator::PrimeWorkspaceEpochForTest(std::uint32_t epoch) const {
  auto lease = workspaces_.Acquire();
  // Prepare first so the shape matches the next Run(): a shape mismatch
  // there would reset the epoch and defeat the priming.
  lease->Prepare(graph_->num_ops(), cluster_->num_devices(),
                 cluster_->num_link_channels());
  lease->epoch = epoch;
}

StepResult ExecutionSimulator::RunInternal(const Placement& placement,
                                           const FaultDraw* faults,
                                           bool record_schedule) const {
  const graph::OpGraph& g = *graph_;
  const int num_ops = g.num_ops();
  const int num_devices = cluster_->num_devices();
  EAGLE_CHECK(placement.num_ops() == num_ops);
  const auto compute_scale = [faults](DeviceId d) {
    return faults == nullptr
               ? 1.0
               : faults->device_compute_scale[static_cast<std::size_t>(d)];
  };
  const auto link_scale = [this, faults](DeviceId src, DeviceId dst) {
    return faults == nullptr
               ? 1.0
               : faults->link_scale[static_cast<std::size_t>(
                     cluster_->link_channel(src, dst))];
  };

  StepResult result;
  result.device_busy_seconds.assign(static_cast<std::size_t>(num_devices), 0.0);
  result.device_peak_bytes.assign(static_cast<std::size_t>(num_devices), 0);
  result.device_param_bytes.assign(static_cast<std::size_t>(num_devices), 0);

  // All per-run scratch lives in a pooled workspace (sim_workspace.h):
  // flat epoch-stamped arrays instead of hash maps, recycled heap vectors
  // instead of priority_queues. Zero heap traffic once warm.
  auto lease = workspaces_.Acquire();
  SimWorkspace& ws = *lease;
  ws.Prepare(num_ops, num_devices, cluster_->num_link_channels());
  const std::uint32_t epoch = ws.epoch;
  const auto cmp = std::greater<ReadyOp>();

  const auto push_ready = [&ws, &cmp](DeviceId d, ReadyOp entry) {
    auto& h = ws.heaps[static_cast<std::size_t>(d)];
    h.push_back(entry);
    std::push_heap(h.begin(), h.end(), cmp);
  };
  // An op's ready time defaults to 0 until a predecessor raises it; the
  // epoch stamp stands in for the old per-run zero-fill.
  const auto raise_ready = [&ws, epoch](graph::OpId v, double t) {
    const auto i = static_cast<std::size_t>(v);
    if (ws.ready_epoch[i] != epoch) {
      ws.ready_epoch[i] = epoch;
      ws.ready_time[i] = t;
    } else if (t > ws.ready_time[i]) {
      ws.ready_time[i] = t;
    }
    return ws.ready_time[i];
  };
  // Pending-input counters start at in-degree, materialized on first
  // decrement; ops with no inputs never get here (seeded below).
  const auto decrement_pending = [&ws, epoch, &g](graph::OpId v) {
    const auto i = static_cast<std::size_t>(v);
    if (ws.pending_epoch[i] != epoch) {
      ws.pending_epoch[i] = epoch;
      ws.pending_inputs[i] = static_cast<int>(g.in_edges(v).size());
    }
    return --ws.pending_inputs[i];
  };

  int scheduled = 0;
  for (graph::OpId i = 0; i < num_ops; ++i) {
    if (g.in_edges(i).empty()) {
      push_ready(placement.device(i),
                 ReadyOp{0.0, critical_priority_[static_cast<std::size_t>(i)],
                         i});
    }
  }

  // Activation liveness per device: tensor intervals collected as we go.
  // The last use time of each op's output on each device is finalized
  // lazily — the interval extends as consumers get scheduled. The
  // (producer, device) -> interval-index map is the flat epoch-stamped
  // live_epoch/live_index pair in the workspace.
  auto touch = [&](graph::OpId producer, DeviceId device, double start,
                   double end, std::int64_t bytes) {
    if (!options_.track_memory || bytes <= 0) return;
    const std::size_t slot =
        static_cast<std::size_t>(producer) *
            static_cast<std::size_t>(num_devices) +
        static_cast<std::size_t>(device);
    auto& ivs = ws.intervals[static_cast<std::size_t>(device)];
    if (ws.live_epoch[slot] != epoch) {
      ws.live_epoch[slot] = epoch;
      ws.live_index[slot] = static_cast<std::uint32_t>(ivs.size());
      ivs.push_back(LiveInterval{start, end, bytes});
    } else {
      auto& iv = ivs[ws.live_index[slot]];
      iv.start = std::min(iv.start, start);
      iv.end = std::max(iv.end, end);
    }
  };

  while (scheduled < num_ops) {
    // Pick the (device, op) pair with the earliest feasible start.
    DeviceId best_dev = -1;
    double best_start = 0.0;
    int best_priority = -1;
    for (DeviceId d = 0; d < num_devices; ++d) {
      const auto& h = ws.heaps[static_cast<std::size_t>(d)];
      if (h.empty()) continue;
      const ReadyOp& head = h.front();
      const double start =
          std::max(head.ready_time, ws.device_free[static_cast<std::size_t>(d)]);
      if (best_dev < 0 || start < best_start ||
          (start == best_start && head.priority > best_priority)) {
        best_dev = d;
        best_start = start;
        best_priority = head.priority;
      }
    }
    EAGLE_CHECK_MSG(best_dev >= 0,
                    "deadlock: no ready ops but " << num_ops - scheduled
                                                  << " unscheduled");
    auto& h = ws.heaps[static_cast<std::size_t>(best_dev)];
    const graph::OpId u = h.front().op;
    std::pop_heap(h.begin(), h.end(), cmp);
    h.pop_back();
    ++scheduled;

    const double start = best_start;
    const double compute =
        cost_model_.ComputeSeconds(g.op(u), best_dev) * compute_scale(best_dev);
    const double finish = start + compute;
    ws.finish_time[static_cast<std::size_t>(u)] = finish;
    ws.device_free[static_cast<std::size_t>(best_dev)] = finish;
    result.device_busy_seconds[static_cast<std::size_t>(best_dev)] += compute;
    if (record_schedule) {
      result.schedule.push_back(ScheduledOp{u, best_dev, start, finish});
    }

    // Output tensor materializes on the producing device.
    touch(u, best_dev, finish, finish, g.op(u).output_bytes());

    // Resolve out-edges: local hand-off or (deduped) transfer. Dedup is
    // keyed on the exact (producer, dst device, bytes) triple: the flat
    // slot caches the first byte size shipped producer→dst; a second
    // distinct size — legitimate when one op feeds consumers tensors of
    // different widths — goes through the overflow list rather than being
    // silently merged (the old 32-bit byte-size hash could collide and
    // drop a real transfer).
    for (auto ei : g.out_edges(u)) {
      const graph::Edge& e = g.edges()[static_cast<std::size_t>(ei)];
      const DeviceId dst_dev = placement.device(e.dst);
      double arrival = finish;
      if (dst_dev != best_dev) {
        const std::size_t slot =
            static_cast<std::size_t>(u) *
                static_cast<std::size_t>(num_devices) +
            static_cast<std::size_t>(dst_dev);
        const double* cached = nullptr;
        if (ws.transfer_epoch[slot] == epoch) {
          if (ws.transfer_bytes[slot] == e.bytes) {
            cached = &ws.transfer_arrival[slot];
          } else {
            // Walk only this slot's chain; other slots' overflow entries
            // are unreachable from here.
            for (std::uint32_t idx = ws.transfer_overflow_head[slot];
                 idx != 0;) {
              const auto& o = ws.transfer_overflow[idx - 1];
              if (o.bytes == e.bytes) {
                cached = &o.arrival;
                break;
              }
              idx = o.next;
            }
          }
        }
        if (cached != nullptr) {
          arrival = *cached;
        } else {
          auto& lf = ws.link_free[static_cast<std::size_t>(
              cluster_->link_channel(best_dev, dst_dev))];
          const double xfer_start = std::max(finish, lf);
          const double xfer =
              cost_model_.TransferSeconds(best_dev, dst_dev, e.bytes) *
              link_scale(best_dev, dst_dev);
          arrival = xfer_start + xfer;
          lf = arrival;
          if (ws.transfer_epoch[slot] != epoch) {
            ws.transfer_epoch[slot] = epoch;
            ws.transfer_bytes[slot] = e.bytes;
            ws.transfer_arrival[slot] = arrival;
            ws.transfer_overflow_head[slot] = 0;
          } else {
            ws.transfer_overflow.push_back(
                {e.bytes, arrival, ws.transfer_overflow_head[slot]});
            ws.transfer_overflow_head[slot] =
                static_cast<std::uint32_t>(ws.transfer_overflow.size());
          }
          result.transfer_seconds_total += xfer;
          result.transfer_bytes_total += e.bytes;
          result.num_transfers++;
          if (record_schedule) {
            result.transfers.push_back(ScheduledTransfer{
                u, best_dev, dst_dev, e.bytes, xfer_start, arrival});
          }
          // The received copy lives on the destination until consumed;
          // the end is extended below as consumers schedule.
          touch(u, dst_dev, arrival, arrival, e.bytes);
        }
      }
      const double dst_ready = raise_ready(e.dst, arrival);
      if (decrement_pending(e.dst) == 0) {
        push_ready(dst_dev,
                   ReadyOp{dst_ready,
                           critical_priority_[static_cast<std::size_t>(e.dst)],
                           e.dst});
      }
    }
    result.step_seconds = std::max(result.step_seconds, finish);

    // Extend the liveness of every input tensor to this op's finish.
    if (options_.track_memory) {
      for (auto ei : g.in_edges(u)) {
        const graph::Edge& e = g.edges()[static_cast<std::size_t>(ei)];
        touch(e.src, best_dev, start, finish,
              placement.device(e.src) == best_dev ? g.op(e.src).output_bytes()
                                                  : e.bytes);
      }
    }
  }

  // Memory accounting: params resident for the whole step + activation
  // sweep with allocator overhead.
  if (options_.track_memory) {
    for (graph::OpId i = 0; i < num_ops; ++i) {
      result.device_param_bytes[static_cast<std::size_t>(placement.device(i))] +=
          g.op(i).param_bytes;
    }
    for (DeviceId d = 0; d < num_devices; ++d) {
      const std::int64_t activation_peak = PeakLiveBytes(
          ws.intervals[static_cast<std::size_t>(d)], ws.event_scratch);
      const std::int64_t peak =
          result.device_param_bytes[static_cast<std::size_t>(d)] +
          static_cast<std::int64_t>(
              static_cast<double>(activation_peak) *
              options_.memory.activation_overhead);
      result.device_peak_bytes[static_cast<std::size_t>(d)] = peak;
      if (peak > cluster_->device(d).memory_bytes && !result.oom) {
        result.oom = true;
        result.oom_device = d;
      }
    }
  }
  Metrics().runs->Increment();
  // Every scheduled op and every physical transfer is one simulated event.
  Metrics().events->Increment(scheduled + result.num_transfers);
  return result;
}

double ExecutionSimulator::ParamTransferSeconds(
    const Placement& placement, const FaultDraw* faults) const {
  const DeviceId cpu = cluster_->FirstCpu();
  double total = 0.0;
  for (graph::OpId i = 0; i < graph_->num_ops(); ++i) {
    const auto& op = graph_->op(i);
    if (op.param_bytes > 0) {
      double scale = 1.0;
      if (faults != nullptr && placement.device(i) != cpu) {
        scale = faults->link_scale[static_cast<std::size_t>(
            cluster_->link_channel(cpu, placement.device(i)))];
      }
      total += scale * cost_model_.TransferSeconds(cpu, placement.device(i),
                                                   op.param_bytes);
    }
  }
  return total;
}

}  // namespace eagle::sim
