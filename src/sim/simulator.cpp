#include "sim/simulator.h"

#include <algorithm>
#include <functional>
#include <sstream>

#include "sim/audit.h"
#include "support/check.h"
#include "support/metrics.h"

namespace eagle::sim {

namespace {

// Telemetry observers: run/event totals for the metrics registry. The
// simulator's own results never read these back.
struct SimMetrics {
  support::metrics::Counter* runs = support::metrics::GetCounter("sim.runs");
  support::metrics::Counter* events =
      support::metrics::GetCounter("sim.events");
};

SimMetrics& Metrics() {
  static SimMetrics m;
  return m;
}

}  // namespace

std::string StepResult::ToString(const ClusterSpec& cluster) const {
  std::ostringstream os;
  if (oom) {
    os << "OOM on " << cluster.device(oom_device).name << " ("
       << static_cast<double>(
              device_peak_bytes[static_cast<std::size_t>(oom_device)]) /
              (1 << 30)
       << " GB > "
       << static_cast<double>(cluster.device(oom_device).memory_bytes) /
              (1 << 30)
       << " GB)";
    return os.str();
  }
  os << "step " << step_seconds << " s; busy:";
  for (int d = 0; d < cluster.num_devices(); ++d) {
    os << " " << cluster.device(d).name << "="
       << device_busy_seconds[static_cast<std::size_t>(d)] << "s/"
       << static_cast<double>(device_peak_bytes[static_cast<std::size_t>(d)]) /
              (1 << 30)
       << "GB";
  }
  os << "; transfers " << num_transfers << " moving "
     << static_cast<double>(transfer_bytes_total) / (1 << 30) << " GB";
  return os.str();
}

ExecutionSimulator::ExecutionSimulator(const graph::OpGraph& graph,
                                       const ClusterSpec& cluster,
                                       SimulatorOptions options)
    : graph_(&graph),
      cluster_(&cluster),
      cost_model_(cluster),
      options_(options),
      topo_(graph.TopologicalOrder()),
      critical_priority_(static_cast<std::size_t>(graph.num_ops()), 0) {
  // Downstream critical-path length (in ops) as static priority.
  for (auto it = topo_.rbegin(); it != topo_.rend(); ++it) {
    const graph::OpId u = *it;
    int best = 0;
    for (auto ei : graph.out_edges(u)) {
      const graph::OpId v = graph.edges()[static_cast<std::size_t>(ei)].dst;
      best = std::max(best, critical_priority_[static_cast<std::size_t>(v)] + 1);
    }
    critical_priority_[static_cast<std::size_t>(u)] = best;
  }
}

StepResult ExecutionSimulator::Run(const Placement& placement,
                                   const FaultDraw* faults) const {
#ifdef EAGLE_AUDIT
  // Audit builds always record the timeline so every simulated execution
  // can be verified; the recording is dropped again unless the caller
  // asked for it, keeping the result shape identical to a release build.
  StepResult result = RunInternal(placement, faults, /*record_schedule=*/true);
  {
    EAGLE_SPAN("sim.audit");
    const AuditReport audit =
        AuditSchedule(result, *graph_, *cluster_, placement, options_);
    EAGLE_CHECK_MSG(audit.ok(), "schedule audit failed:\n" << audit.ToString());
  }
  if (!options_.record_schedule) {
    result.schedule.clear();
    result.schedule.shrink_to_fit();
    result.transfers.clear();
    result.transfers.shrink_to_fit();
  }
  return result;
#else
  return RunInternal(placement, faults, options_.record_schedule);
#endif
}

StepResult ExecutionSimulator::RunInternal(const Placement& placement,
                                           const FaultDraw* faults,
                                           bool record_schedule) const {
  const graph::OpGraph& g = *graph_;
  const int num_ops = g.num_ops();
  const int num_devices = cluster_->num_devices();
  EAGLE_CHECK(placement.num_ops() == num_ops);
  const auto compute_scale = [faults](DeviceId d) {
    return faults == nullptr
               ? 1.0
               : faults->device_compute_scale[static_cast<std::size_t>(d)];
  };
  const auto link_scale = [this, faults](DeviceId src, DeviceId dst) {
    return faults == nullptr
               ? 1.0
               : faults->link_scale[static_cast<std::size_t>(
                     cluster_->link_channel(src, dst))];
  };

  StepResult result;
  result.device_busy_seconds.assign(static_cast<std::size_t>(num_devices), 0.0);
  result.device_peak_bytes.assign(static_cast<std::size_t>(num_devices), 0);
  result.device_param_bytes.assign(static_cast<std::size_t>(num_devices), 0);

  // All per-run scratch lives in a pooled workspace (sim_workspace.h):
  // flat epoch-stamped arrays instead of hash maps, recycled heap vectors
  // instead of priority_queues. Zero heap traffic once warm.
  auto lease = workspaces_.Acquire();
  SimWorkspace& ws = *lease;
  ws.Prepare(num_ops, num_devices, cluster_->num_link_channels());
  const std::uint32_t epoch = ws.epoch;
  const auto cmp = std::greater<ReadyOp>();

  const auto push_ready = [&ws, &cmp](DeviceId d, ReadyOp entry) {
    auto& h = ws.heaps[static_cast<std::size_t>(d)];
    h.push_back(entry);
    std::push_heap(h.begin(), h.end(), cmp);
  };
  // An op's ready time defaults to 0 until a predecessor raises it; the
  // epoch stamp stands in for the old per-run zero-fill.
  const auto raise_ready = [&ws, epoch](graph::OpId v, double t) {
    const auto i = static_cast<std::size_t>(v);
    if (ws.ready_epoch[i] != epoch) {
      ws.ready_epoch[i] = epoch;
      ws.ready_time[i] = t;
    } else if (t > ws.ready_time[i]) {
      ws.ready_time[i] = t;
    }
    return ws.ready_time[i];
  };
  // Pending-input counters start at in-degree, materialized on first
  // decrement; ops with no inputs never get here (seeded below).
  const auto decrement_pending = [&ws, epoch, &g](graph::OpId v) {
    const auto i = static_cast<std::size_t>(v);
    if (ws.pending_epoch[i] != epoch) {
      ws.pending_epoch[i] = epoch;
      ws.pending_inputs[i] = static_cast<int>(g.in_edges(v).size());
    }
    return --ws.pending_inputs[i];
  };

  int scheduled = 0;
  for (graph::OpId i = 0; i < num_ops; ++i) {
    if (g.in_edges(i).empty()) {
      push_ready(placement.device(i),
                 ReadyOp{0.0, critical_priority_[static_cast<std::size_t>(i)],
                         i});
    }
  }

  // Activation liveness per device: tensor intervals collected as we go.
  // The last use time of each op's output on each device is finalized
  // lazily — the interval extends as consumers get scheduled. The
  // (producer, device) -> interval-index map is the flat epoch-stamped
  // live_epoch/live_index pair in the workspace.
  auto touch = [&](graph::OpId producer, DeviceId device, double start,
                   double end, std::int64_t bytes) {
    if (!options_.track_memory || bytes <= 0) return;
    const std::size_t slot =
        static_cast<std::size_t>(producer) *
            static_cast<std::size_t>(num_devices) +
        static_cast<std::size_t>(device);
    auto& ivs = ws.intervals[static_cast<std::size_t>(device)];
    if (ws.live_epoch[slot] != epoch) {
      ws.live_epoch[slot] = epoch;
      ws.live_index[slot] = static_cast<std::uint32_t>(ivs.size());
      ivs.push_back(LiveInterval{start, end, bytes});
    } else {
      auto& iv = ivs[ws.live_index[slot]];
      iv.start = std::min(iv.start, start);
      iv.end = std::max(iv.end, end);
    }
  };

  while (scheduled < num_ops) {
    // Pick the (device, op) pair with the earliest feasible start.
    DeviceId best_dev = -1;
    double best_start = 0.0;
    int best_priority = -1;
    for (DeviceId d = 0; d < num_devices; ++d) {
      const auto& h = ws.heaps[static_cast<std::size_t>(d)];
      if (h.empty()) continue;
      const ReadyOp& head = h.front();
      const double start =
          std::max(head.ready_time, ws.device_free[static_cast<std::size_t>(d)]);
      if (best_dev < 0 || start < best_start ||
          (start == best_start && head.priority > best_priority)) {
        best_dev = d;
        best_start = start;
        best_priority = head.priority;
      }
    }
    EAGLE_CHECK_MSG(best_dev >= 0,
                    "deadlock: no ready ops but " << num_ops - scheduled
                                                  << " unscheduled");
    auto& h = ws.heaps[static_cast<std::size_t>(best_dev)];
    const graph::OpId u = h.front().op;
    std::pop_heap(h.begin(), h.end(), cmp);
    h.pop_back();
    ++scheduled;

    const double start = best_start;
    const double compute =
        cost_model_.ComputeSeconds(g.op(u), best_dev) * compute_scale(best_dev);
    const double finish = start + compute;
    ws.finish_time[static_cast<std::size_t>(u)] = finish;
    ws.device_free[static_cast<std::size_t>(best_dev)] = finish;
    result.device_busy_seconds[static_cast<std::size_t>(best_dev)] += compute;
    if (record_schedule) {
      result.schedule.push_back(ScheduledOp{u, best_dev, start, finish});
    }

    // Output tensor materializes on the producing device.
    touch(u, best_dev, finish, finish, g.op(u).output_bytes());

    // Resolve out-edges: local hand-off or (deduped) transfer. Dedup is
    // keyed on the exact (producer, dst device, bytes) triple: the flat
    // slot caches the first byte size shipped producer→dst; a second
    // distinct size — legitimate when one op feeds consumers tensors of
    // different widths — goes through the overflow list rather than being
    // silently merged (the old 32-bit byte-size hash could collide and
    // drop a real transfer).
    for (auto ei : g.out_edges(u)) {
      const graph::Edge& e = g.edges()[static_cast<std::size_t>(ei)];
      const DeviceId dst_dev = placement.device(e.dst);
      double arrival = finish;
      if (dst_dev != best_dev) {
        const std::size_t slot =
            static_cast<std::size_t>(u) *
                static_cast<std::size_t>(num_devices) +
            static_cast<std::size_t>(dst_dev);
        const double* cached = nullptr;
        if (ws.transfer_epoch[slot] == epoch) {
          if (ws.transfer_bytes[slot] == e.bytes) {
            cached = &ws.transfer_arrival[slot];
          } else {
            for (const auto& o : ws.transfer_overflow) {
              if (o.slot == slot && o.bytes == e.bytes) {
                cached = &o.arrival;
                break;
              }
            }
          }
        }
        if (cached != nullptr) {
          arrival = *cached;
        } else {
          auto& lf = ws.link_free[static_cast<std::size_t>(
              cluster_->link_channel(best_dev, dst_dev))];
          const double xfer_start = std::max(finish, lf);
          const double xfer =
              cost_model_.TransferSeconds(best_dev, dst_dev, e.bytes) *
              link_scale(best_dev, dst_dev);
          arrival = xfer_start + xfer;
          lf = arrival;
          if (ws.transfer_epoch[slot] != epoch) {
            ws.transfer_epoch[slot] = epoch;
            ws.transfer_bytes[slot] = e.bytes;
            ws.transfer_arrival[slot] = arrival;
          } else {
            ws.transfer_overflow.push_back({slot, e.bytes, arrival});
          }
          result.transfer_seconds_total += xfer;
          result.transfer_bytes_total += e.bytes;
          result.num_transfers++;
          if (record_schedule) {
            result.transfers.push_back(ScheduledTransfer{
                u, best_dev, dst_dev, e.bytes, xfer_start, arrival});
          }
          // The received copy lives on the destination until consumed;
          // the end is extended below as consumers schedule.
          touch(u, dst_dev, arrival, arrival, e.bytes);
        }
      }
      const double dst_ready = raise_ready(e.dst, arrival);
      if (decrement_pending(e.dst) == 0) {
        push_ready(dst_dev,
                   ReadyOp{dst_ready,
                           critical_priority_[static_cast<std::size_t>(e.dst)],
                           e.dst});
      }
    }
    result.step_seconds = std::max(result.step_seconds, finish);

    // Extend the liveness of every input tensor to this op's finish.
    if (options_.track_memory) {
      for (auto ei : g.in_edges(u)) {
        const graph::Edge& e = g.edges()[static_cast<std::size_t>(ei)];
        touch(e.src, best_dev, start, finish,
              placement.device(e.src) == best_dev ? g.op(e.src).output_bytes()
                                                  : e.bytes);
      }
    }
  }

  // Memory accounting: params resident for the whole step + activation
  // sweep with allocator overhead.
  if (options_.track_memory) {
    for (graph::OpId i = 0; i < num_ops; ++i) {
      result.device_param_bytes[static_cast<std::size_t>(placement.device(i))] +=
          g.op(i).param_bytes;
    }
    for (DeviceId d = 0; d < num_devices; ++d) {
      const std::int64_t activation_peak = PeakLiveBytes(
          ws.intervals[static_cast<std::size_t>(d)], ws.event_scratch);
      const std::int64_t peak =
          result.device_param_bytes[static_cast<std::size_t>(d)] +
          static_cast<std::int64_t>(
              static_cast<double>(activation_peak) *
              options_.memory.activation_overhead);
      result.device_peak_bytes[static_cast<std::size_t>(d)] = peak;
      if (peak > cluster_->device(d).memory_bytes && !result.oom) {
        result.oom = true;
        result.oom_device = d;
      }
    }
  }
  Metrics().runs->Increment();
  // Every scheduled op and every physical transfer is one simulated event.
  Metrics().events->Increment(scheduled + result.num_transfers);
  return result;
}

double ExecutionSimulator::ParamTransferSeconds(
    const Placement& placement, const FaultDraw* faults) const {
  const DeviceId cpu = cluster_->FirstCpu();
  double total = 0.0;
  for (graph::OpId i = 0; i < graph_->num_ops(); ++i) {
    const auto& op = graph_->op(i);
    if (op.param_bytes > 0) {
      double scale = 1.0;
      if (faults != nullptr && placement.device(i) != cpu) {
        scale = faults->link_scale[static_cast<std::size_t>(
            cluster_->link_channel(cpu, placement.device(i)))];
      }
      total += scale * cost_model_.TransferSeconds(cpu, placement.device(i),
                                                   op.param_bytes);
    }
  }
  return total;
}

}  // namespace eagle::sim
