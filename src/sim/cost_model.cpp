#include "sim/cost_model.h"

#include <algorithm>

namespace eagle::sim {

double CostModel::ComputeSeconds(const graph::OpDef& op,
                                 DeviceId device) const {
  const DeviceSpec& spec = cluster_->device(device);
  const double compute = op.flops / (spec.gflops * 1e9);
  // Each op reads its inputs and writes its output; approximate moved
  // bytes by the output size (inputs are accounted by their producers).
  const double bandwidth = static_cast<double>(op.output_bytes()) /
                           (spec.mem_bw_gbps * 1e9);
  return spec.launch_overhead_us * 1e-6 + std::max(compute, bandwidth);
}

double CostModel::TransferSeconds(DeviceId src, DeviceId dst,
                                  std::int64_t bytes) const {
  if (src == dst) return 0.0;
  const LinkSpec& link = cluster_->link(src, dst);
  return link.latency_us * 1e-6 +
         static_cast<double>(bytes) / (link.bandwidth_gbps * 1e9);
}

}  // namespace eagle::sim
