// ExecutionSimulator: deterministic discrete-event simulation of one
// training step of a placed computational graph.
//
// This is the substitute for the paper's physical 4-GPU machine (§IV-C).
// Model:
//   - each device executes its ops one at a time (list scheduling with an
//     earliest-start / critical-path priority, matching how TF's executor
//     keeps a device busy whenever work is ready);
//   - cross-device edges become transfers serialized on the directed link
//     between the two devices, paying latency + bytes/bandwidth;
//   - a tensor sent to the same destination device more than once per step
//     is transferred once and reused (TensorFlow's send/recv dedup) — this
//     matters for unrolled RNNs reading shared layer weights;
//   - device memory = resident params (+ optimizer slots) + peak live
//     activations (scaled by an allocator-overhead factor); exceeding the
//     device capacity marks the placement invalid (the environment's OOM
//     signal in Table IV).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/op_graph.h"
#include "sim/cost_model.h"
#include "sim/delta.h"
#include "sim/device.h"
#include "sim/fault.h"
#include "sim/memory_model.h"
#include "sim/placement.h"
#include "sim/sim_workspace.h"
#include "support/resource_pool.h"

namespace eagle::sim {

// One scheduled op execution (recorded when record_schedule is on).
struct ScheduledOp {
  graph::OpId op = graph::kInvalidOp;
  DeviceId device = -1;
  double start_seconds = 0.0;
  double end_seconds = 0.0;
};

// One scheduled cross-device transfer.
struct ScheduledTransfer {
  graph::OpId producer = graph::kInvalidOp;
  DeviceId src = -1;
  DeviceId dst = -1;
  std::int64_t bytes = 0;
  double start_seconds = 0.0;
  double end_seconds = 0.0;
};

struct StepResult {
  bool oom = false;
  DeviceId oom_device = -1;
  double step_seconds = 0.0;
  std::vector<double> device_busy_seconds;   // per device
  std::vector<std::int64_t> device_peak_bytes;  // per device (incl. params)
  std::vector<std::int64_t> device_param_bytes;
  double transfer_seconds_total = 0.0;       // sum over link busy time
  std::int64_t transfer_bytes_total = 0;
  int num_transfers = 0;
  // Populated only when SimulatorOptions::record_schedule is set.
  std::vector<ScheduledOp> schedule;
  std::vector<ScheduledTransfer> transfers;

  std::string ToString(const ClusterSpec& cluster) const;
};

struct SimulatorOptions {
  MemoryModelOptions memory;
  // When false, memory accounting (and OOM detection) is skipped — used by
  // throughput microbenches.
  bool track_memory = true;
  // Record the full op/transfer timeline (for trace export and the
  // critical-path analyzer). Off by default: it allocates per op.
  bool record_schedule = false;
  // Delta re-simulation (sim/delta.h): when enabled, Run() leases a
  // DeltaContext and serves placements differing in few ops incrementally.
  // Results are bit-identical to full runs (audited under EAGLE_AUDIT).
  DeltaOptions delta;
};

class ExecutionSimulator {
 public:
  ExecutionSimulator(const graph::OpGraph& graph, const ClusterSpec& cluster,
                     SimulatorOptions options = {});

  // Simulates one steady-state training step under `placement` (which must
  // already be normalized). Deterministic. When `faults` is given, device
  // compute times are scaled by its per-device straggler factors and
  // transfer times by its per-channel link degradation (hard faults —
  // crash / device-down — are handled by the measurement layer, not here).
  // In EAGLE_AUDIT builds every run is audited against the schedule
  // invariants (sim/audit.h) and aborts via EAGLE_CHECK on a violation.
  StepResult Run(const Placement& placement,
                 const FaultDraw* faults = nullptr) const;

  // Like Run(), but evaluates against a caller-held DeltaContext: when
  // `placement` differs from the context's cached run in few ops, only the
  // invalidated cone is re-simulated (bit-identical to a full run; see
  // sim/delta.h). On a fallback the full path runs and refreshes the
  // context. Callers that evaluate chains of related placements (the
  // placement environment's move loop) hold one context per chain; Run()
  // with options.delta.enabled leases one from an internal pool instead.
  StepResult RunWithContext(const Placement& placement, DeltaContext& ctx,
                            const FaultDraw* faults = nullptr) const;

  // Test hook: primes the pooled workspace's epoch counter so the
  // wrap-around path (epoch overflowing back to 0) can be exercised
  // without 2^32 runs. Single-threaded callers get the primed workspace
  // back on the next Run() (the pool is LIFO).
  void PrimeWorkspaceEpochForTest(std::uint32_t epoch) const;

  // Seconds to ship every parameter tensor from host to its device — the
  // warm-up cost the measurement protocol pays on the first step.
  double ParamTransferSeconds(const Placement& placement,
                              const FaultDraw* faults = nullptr) const;

  const graph::OpGraph& graph() const { return *graph_; }
  const ClusterSpec& cluster() const { return *cluster_; }
  const CostModel& cost_model() const { return cost_model_; }

 private:
  // The discrete-event loop behind Run(). `record_schedule` overrides
  // options_.record_schedule so audit builds can always capture the
  // timeline the auditor verifies.
  StepResult RunInternal(const Placement& placement, const FaultDraw* faults,
                         bool record_schedule) const;

  const graph::OpGraph* graph_;
  const ClusterSpec* cluster_;
  CostModel cost_model_;
  SimulatorOptions options_;
  std::vector<graph::OpId> topo_;       // cached topological order
  std::vector<int> critical_priority_;  // longer downstream path == higher
  // Run() is const and concurrent (EvalService workers share one
  // simulator), so per-run scratch is leased rather than a plain member.
  // After warm-up every lease hits the free list and runs allocation-free.
  mutable support::ResourcePool<SimWorkspace> workspaces_;
  // Delta contexts for Run() when options_.delta.enabled: LIFO leasing
  // keeps each worker's chain of consecutive placements on "its" context.
  mutable support::ResourcePool<DeltaContext> delta_contexts_;
};

}  // namespace eagle::sim
