#include "sim/trace.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "support/check.h"

namespace eagle::sim {

namespace {
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}
}  // namespace

std::string ToChromeTrace(const StepResult& result,
                          const graph::OpGraph& graph,
                          const ClusterSpec& cluster) {
  EAGLE_CHECK_MSG(!result.schedule.empty() || graph.num_ops() == 0,
                  "no recorded schedule — enable "
                  "SimulatorOptions::record_schedule");
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& name, const std::string& category,
                  int pid, int tid, double start, double end) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << JsonEscape(name) << "\",\"cat\":\"" << category
       << "\",\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":" << tid
       << ",\"ts\":" << start * 1e6 << ",\"dur\":" << (end - start) * 1e6
       << "}";
  };
  // Metadata: device names.
  for (DeviceId d = 0; d < cluster.num_devices(); ++d) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":" << d
       << ",\"args\":{\"name\":\"" << JsonEscape(cluster.device(d).name)
       << "\"}}";
  }
  for (const auto& op : result.schedule) {
    emit(graph.op(op.op).name, "compute", 0, op.device, op.start_seconds,
         op.end_seconds);
  }
  // Links get their own pid so tracing tools group them separately.
  for (const auto& transfer : result.transfers) {
    const int link_tid =
        transfer.src * cluster.num_devices() + transfer.dst;
    emit(graph.op(transfer.producer).name + " (" +
             std::to_string(transfer.bytes >> 10) + " KB)",
         "transfer", 1, link_tid, transfer.start_seconds,
         transfer.end_seconds);
  }
  os << "]}";
  return os.str();
}

CriticalPathReport AnalyzeCriticalPath(const StepResult& result,
                                       const graph::OpGraph& graph) {
  CriticalPathReport report;
  if (result.schedule.empty()) return report;

  std::unordered_map<graph::OpId, const ScheduledOp*> by_op;
  for (const auto& op : result.schedule) by_op[op.op] = &op;
  // Transfer arrival per (producer, dst device).
  std::unordered_map<std::uint64_t, const ScheduledTransfer*> by_transfer;
  for (const auto& t : result.transfers) {
    by_transfer[(static_cast<std::uint64_t>(t.producer) << 8) |
                static_cast<std::uint64_t>(t.dst)] = &t;
  }

  // Start from the op that finishes last.
  const ScheduledOp* current = &result.schedule[0];
  for (const auto& op : result.schedule) {
    if (op.end_seconds > current->end_seconds) current = &op;
  }

  while (current != nullptr) {
    report.path.push_back(current->op);
    report.compute_seconds += current->end_seconds - current->start_seconds;

    // Which input (or device queue) gated this op's start?
    const ScheduledOp* gating_op = nullptr;
    double gating_ready = 0.0;
    const ScheduledTransfer* gating_transfer = nullptr;
    for (auto ei : graph.in_edges(current->op)) {
      const graph::OpId src = graph.edges()[static_cast<std::size_t>(ei)].src;
      auto it = by_op.find(src);
      if (it == by_op.end()) continue;
      double ready = it->second->end_seconds;
      const ScheduledTransfer* transfer = nullptr;
      if (it->second->device != current->device) {
        auto tit = by_transfer.find(
            (static_cast<std::uint64_t>(src) << 8) |
            static_cast<std::uint64_t>(current->device));
        if (tit != by_transfer.end()) {
          transfer = tit->second;
          ready = transfer->end_seconds;
        }
      }
      if (ready > gating_ready) {
        gating_ready = ready;
        gating_op = it->second;
        gating_transfer = transfer;
      }
    }
    // Gap between the gating input being ready and this op starting is
    // queueing (the device was busy with other work).
    report.queue_seconds +=
        std::max(0.0, current->start_seconds - gating_ready);
    if (gating_transfer != nullptr) {
      report.transfer_seconds +=
          gating_transfer->end_seconds - gating_transfer->start_seconds;
    }
    current = gating_op;
  }
  return report;
}

std::string CriticalPathReport::ToString(const graph::OpGraph& graph) const {
  std::ostringstream os;
  os << "critical path: " << path.size() << " ops; compute "
     << compute_seconds << " s, transfer " << transfer_seconds
     << " s, queueing " << queue_seconds << " s";
  if (!path.empty()) {
    os << "; sink op " << graph.op(path.front()).name;
  }
  return os.str();
}

}  // namespace eagle::sim
