// Frozen pre-optimization discrete-event simulator, kept verbatim as the
// baseline for bench_micro (naive-vs-workspace steps/sec in one binary)
// and as an equality oracle in tests: on any real graph the workspace
// simulator must reproduce this implementation's StepResult exactly.
//
// Two historical details are preserved on purpose:
//   - every run allocates its scratch (vectors, priority queues, two
//     unordered_maps) from the heap, which is the overhead the pooled
//     SimWorkspace removes;
//   - transfer dedup keys on a lossy 32-bit hash of the byte size, so two
//     same-(producer, dst) transfers whose sizes collide under the hash
//     (e.g. 1000 and 2971216073 bytes) are wrongly merged. The workspace
//     simulator keys exactly; tests/test_sim.cpp pins the divergence.
//
// Deliberately not part of eagle_sim: only benches and tests link
// eagle_sim_naive.
#pragma once

#include <vector>

#include "graph/op_graph.h"
#include "sim/device.h"
#include "sim/fault.h"
#include "sim/placement.h"
#include "sim/simulator.h"

namespace eagle::sim::naive {

// Downstream critical-path length per op, identical to what the
// ExecutionSimulator constructor caches. Exposed so bench_micro can
// precompute it outside the timed region — the historical simulator paid
// this once per construction, not once per run, and the baseline should
// not be charged for work the optimized path never did either.
std::vector<int> CriticalPriorities(const graph::OpGraph& graph);

// One step under `placement`, exactly as ExecutionSimulator::RunInternal
// computed it before the workspace refactor.
StepResult RunReference(const graph::OpGraph& graph,
                        const ClusterSpec& cluster,
                        const SimulatorOptions& options,
                        const std::vector<int>& critical_priority,
                        const Placement& placement,
                        const FaultDraw* faults = nullptr,
                        bool record_schedule = false);

// Convenience overload recomputing the priorities per call.
StepResult RunReference(const graph::OpGraph& graph,
                        const ClusterSpec& cluster,
                        const SimulatorOptions& options,
                        const Placement& placement,
                        const FaultDraw* faults = nullptr,
                        bool record_schedule = false);

}  // namespace eagle::sim::naive
