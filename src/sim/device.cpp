#include "sim/device.h"

#include <cmath>
#include <sstream>
#include <utility>

#include "support/check.h"

namespace eagle::sim {

DeviceId ClusterSpec::AddDevice(DeviceSpec spec) {
  const auto id = static_cast<DeviceId>(devices_.size());
  devices_.push_back(std::move(spec));
  // Grow the link matrices, preserving existing entries. Channel entries
  // are dense indices into channel_ids_ (not row-major positions), so the
  // re-layout cannot invalidate them: links sharing a label before the
  // AddDevice still share the same dense index after.
  const int n = num_devices();
  const auto nn = static_cast<std::size_t>(n) * static_cast<std::size_t>(n);
  std::vector<LinkSpec> links(nn);
  std::vector<unsigned char> set(nn, 0);
  std::vector<int> channels(nn, -1);
  for (int s = 0; s + 1 < n; ++s) {
    for (int d = 0; d + 1 < n; ++d) {
      const auto to = static_cast<std::size_t>(s) *
                          static_cast<std::size_t>(n) +
                      static_cast<std::size_t>(d);
      const auto from = static_cast<std::size_t>(s) *
                            static_cast<std::size_t>(n - 1) +
                        static_cast<std::size_t>(d);
      links[to] = links_[from];
      set[to] = link_set_[from];
      channels[to] = link_channels_[from];
    }
  }
  links_ = std::move(links);
  link_set_ = std::move(set);
  link_channels_ = std::move(channels);
  return id;
}

void ClusterSpec::SetDefaultLink(LinkSpec link) {
  default_link_ = link;
  has_default_link_ = true;
}

bool ClusterSpec::link_configured(DeviceId src, DeviceId dst) const {
  const int n = num_devices();
  EAGLE_CHECK(src >= 0 && src < n && dst >= 0 && dst < n);
  return link_set_[static_cast<std::size_t>(src) *
                       static_cast<std::size_t>(n) +
                   static_cast<std::size_t>(dst)] != 0;
}

void ClusterSpec::SetLinkChannel(DeviceId src, DeviceId dst, int channel) {
  const int n = num_devices();
  EAGLE_CHECK(src >= 0 && src < n && dst >= 0 && dst < n && channel >= 0);
  // Map the caller-chosen label to a dense index in first-use order. The
  // old scheme stored the raw label and reserved [0, n*n) for it, which
  // broke two ways: labels >= n*n aliased the default-channel range (or
  // indexed past num_link_channels() into workspace arrays), and the
  // reserved range left 2*n*n channel slots live even when none were
  // labelled.
  int dense = -1;
  for (std::size_t i = 0; i < channel_ids_.size(); ++i) {
    if (channel_ids_[i] == channel) {
      dense = static_cast<int>(i);
      break;
    }
  }
  if (dense < 0) {
    dense = static_cast<int>(channel_ids_.size());
    channel_ids_.push_back(channel);
  }
  link_channels_[static_cast<std::size_t>(src) * static_cast<std::size_t>(n) +
                 static_cast<std::size_t>(dst)] = dense;
}

int ClusterSpec::link_channel(DeviceId src, DeviceId dst) const {
  const int n = num_devices();
  EAGLE_CHECK(src >= 0 && src < n && dst >= 0 && dst < n);
  const int custom =
      link_channels_[static_cast<std::size_t>(src) *
                         static_cast<std::size_t>(n) +
                     static_cast<std::size_t>(dst)];
  // Dense custom channels occupy [0, num_custom_channels()); default
  // per-pair channels are offset past them so the ranges never collide.
  return custom >= 0 ? custom : num_custom_channels() + src * n + dst;
}

int ClusterSpec::num_link_channels() const {
  const int n = num_devices();
  return num_custom_channels() + n * n;
}

void ClusterSpec::SetLink(DeviceId src, DeviceId dst, LinkSpec link) {
  const int n = num_devices();
  EAGLE_CHECK(src >= 0 && src < n && dst >= 0 && dst < n);
  const auto idx = static_cast<std::size_t>(src) *
                       static_cast<std::size_t>(n) +
                   static_cast<std::size_t>(dst);
  links_[idx] = link;
  link_set_[idx] = 1;
}

const DeviceSpec& ClusterSpec::device(DeviceId id) const {
  EAGLE_CHECK_MSG(id >= 0 && id < num_devices(),
                  "device id " << id << " out of range");
  return devices_[static_cast<std::size_t>(id)];
}

const LinkSpec& ClusterSpec::link(DeviceId src, DeviceId dst) const {
  const int n = num_devices();
  EAGLE_CHECK(src >= 0 && src < n && dst >= 0 && dst < n);
  const auto idx = static_cast<std::size_t>(src) *
                       static_cast<std::size_t>(n) +
                   static_cast<std::size_t>(dst);
  if (link_set_[idx] == 0 && has_default_link_) return default_link_;
  return links_[idx];
}

DeviceId ClusterSpec::FirstCpu() const {
  for (DeviceId i = 0; i < num_devices(); ++i) {
    if (device(i).kind == DeviceKind::kCPU) return i;
  }
  return -1;
}

std::vector<DeviceId> ClusterSpec::Gpus() const {
  std::vector<DeviceId> out;
  for (DeviceId i = 0; i < num_devices(); ++i) {
    if (device(i).kind == DeviceKind::kGPU) out.push_back(i);
  }
  return out;
}

namespace {

// A rate the cost model divides by: must be a positive finite number.
bool ValidRate(double v) { return std::isfinite(v) && v > 0.0; }
// An additive cost term: must be a non-negative finite number.
bool ValidCost(double v) { return std::isfinite(v) && v >= 0.0; }

}  // namespace

support::Status ClusterSpec::Validate() const {
  using support::ErrorCode;
  using support::Status;
  if (devices_.empty()) {
    return Status::Error(ErrorCode::kSyntax, "cluster has no devices");
  }
  std::ostringstream os;
  for (DeviceId i = 0; i < num_devices(); ++i) {
    const DeviceSpec& d = device(i);
    if (!ValidRate(d.gflops)) {
      os << "device " << i << " ('" << d.name << "'): gflops must be a "
         << "positive finite number, got " << d.gflops;
      return Status::Error(ErrorCode::kNumericOverflow, os.str());
    }
    if (!ValidRate(d.mem_bw_gbps)) {
      os << "device " << i << " ('" << d.name << "'): mem_bw_gbps must be a "
         << "positive finite number, got " << d.mem_bw_gbps;
      return Status::Error(ErrorCode::kNumericOverflow, os.str());
    }
    if (!ValidCost(d.launch_overhead_us)) {
      os << "device " << i << " ('" << d.name << "'): launch_overhead_us "
         << "must be a non-negative finite number, got "
         << d.launch_overhead_us;
      return Status::Error(ErrorCode::kNumericOverflow, os.str());
    }
    if (d.memory_bytes < 0) {
      os << "device " << i << " ('" << d.name << "'): memory_bytes must be "
         << "non-negative, got " << d.memory_bytes;
      return Status::Error(ErrorCode::kNumericOverflow, os.str());
    }
  }
  if (has_default_link_) {
    if (!ValidRate(default_link_.bandwidth_gbps)) {
      os << "default link: bandwidth_gbps must be a positive finite "
         << "number, got " << default_link_.bandwidth_gbps;
      return Status::Error(ErrorCode::kNumericOverflow, os.str());
    }
    if (!ValidCost(default_link_.latency_us)) {
      os << "default link: latency_us must be a non-negative finite "
         << "number, got " << default_link_.latency_us;
      return Status::Error(ErrorCode::kNumericOverflow, os.str());
    }
  }
  for (DeviceId s = 0; s < num_devices(); ++s) {
    for (DeviceId d = 0; d < num_devices(); ++d) {
      if (s == d) continue;  // the diagonal is never consulted
      // An unconfigured pair used to fall back to the default-constructed
      // 12 GB/s PCIe LinkSpec, which made unreachable pairs in partial
      // multi-node specs look like fast local links. Now it is an error
      // unless the spec opted into a default tier via SetDefaultLink.
      if (!link_configured(s, d) && !has_default_link_) {
        os << "link " << s << " ('" << device(s).name << "') -> " << d
           << " ('" << device(d).name << "') was never configured and no "
           << "default link tier is declared";
        return Status::Error(ErrorCode::kSyntax, os.str());
      }
      const LinkSpec& l = link(s, d);
      if (!ValidRate(l.bandwidth_gbps)) {
        os << "link " << s << "->" << d << ": bandwidth_gbps must be a "
           << "positive finite number, got " << l.bandwidth_gbps;
        return Status::Error(ErrorCode::kNumericOverflow, os.str());
      }
      if (!ValidCost(l.latency_us)) {
        os << "link " << s << "->" << d << ": latency_us must be a "
           << "non-negative finite number, got " << l.latency_us;
        return Status::Error(ErrorCode::kNumericOverflow, os.str());
      }
    }
  }
  return Status::Ok();
}

std::string ClusterSpec::ToString() const {
  std::ostringstream os;
  for (DeviceId i = 0; i < num_devices(); ++i) {
    const auto& d = device(i);
    os << d.name << " (" << (d.kind == DeviceKind::kGPU ? "GPU" : "CPU")
       << ", " << d.gflops << " GFLOPS, "
       << static_cast<double>(d.memory_bytes) / (1 << 30) << " GB)";
    if (i + 1 < num_devices()) os << ", ";
  }
  return os.str();
}

ClusterSpec MakeDefaultCluster(const ClusterOptions& options) {
  ClusterSpec cluster;
  DeviceSpec cpu;
  cpu.name = "/cpu:0";
  cpu.kind = DeviceKind::kCPU;
  cpu.gflops = options.cpu_gflops;
  cpu.mem_bw_gbps = 60.0;
  cpu.launch_overhead_us = 25.0;
  cpu.memory_bytes = 120LL << 30;  // 125 GB host RAM in the paper's machine
  const DeviceId cpu_id = cluster.AddDevice(cpu);

  std::vector<DeviceId> gpus;
  for (int i = 0; i < options.num_gpus; ++i) {
    DeviceSpec gpu;
    gpu.name = "/gpu:" + std::to_string(i);
    gpu.kind = DeviceKind::kGPU;
    gpu.gflops = options.gpu_gflops;
    gpu.mem_bw_gbps = 550.0;
    gpu.launch_overhead_us = 50.0;
    gpu.memory_bytes = options.gpu_memory_bytes;
    gpus.push_back(cluster.AddDevice(gpu));
  }

  LinkSpec host_link{options.pcie_gbps, options.pcie_latency_us};
  // GPU peer-to-peer traffic crosses the PCIe switch: a bit slower.
  LinkSpec peer_link{options.pcie_gbps * 0.8, options.pcie_latency_us * 1.3};
  for (DeviceId g : gpus) {
    cluster.SetLink(cpu_id, g, host_link);
    cluster.SetLink(g, cpu_id, host_link);
    if (options.shared_host_bus) {
      cluster.SetLinkChannel(cpu_id, g, 0);
      cluster.SetLinkChannel(g, cpu_id, 0);
    }
    for (DeviceId other : gpus) {
      if (g != other) cluster.SetLink(g, other, peer_link);
    }
  }
  return cluster;
}

support::StatusOr<ClusterSpec> MakeScaledCluster(double memory_scale,
                                                 const ClusterOptions& options) {
  using support::ErrorCode;
  using support::Status;
  if (!std::isfinite(memory_scale) || memory_scale <= 0.0) {
    std::ostringstream os;
    os << "memory_scale must be a positive finite number, got "
       << memory_scale;
    return Status::Error(ErrorCode::kNumericOverflow, os.str());
  }
  ClusterOptions scaled = options;
  scaled.gpu_memory_bytes = static_cast<std::int64_t>(
      static_cast<double>(options.gpu_memory_bytes) * memory_scale);
  ClusterSpec cluster = MakeDefaultCluster(scaled);
  support::Status status = cluster.Validate();
  if (!status.ok()) return status;
  return cluster;
}

ClusterSpec MakeHierarchicalCluster(const HierarchicalClusterOptions& options) {
  EAGLE_CHECK_MSG(options.num_nodes >= 1, "need at least one node");
  EAGLE_CHECK_MSG(options.gpus_per_node >= 0, "negative gpus_per_node");
  EAGLE_CHECK_MSG(options.island_size >= 1, "island_size must be >= 1");
  ClusterSpec cluster;
  // Per-node device ids, CPU first; plus the NVLink island index of every
  // device (-1 for CPUs) to decide same-node tier membership below.
  std::vector<std::vector<DeviceId>> node_devices(
      static_cast<std::size_t>(options.num_nodes));
  std::vector<int> island_of;
  for (int ni = 0; ni < options.num_nodes; ++ni) {
    const std::string prefix = "/node" + std::to_string(ni);
    DeviceSpec cpu;
    cpu.name = prefix + "/cpu:0";
    cpu.kind = DeviceKind::kCPU;
    cpu.gflops = options.cpu_gflops;
    cpu.mem_bw_gbps = 60.0;
    cpu.launch_overhead_us = 25.0;
    cpu.memory_bytes = options.cpu_memory_bytes;
    node_devices[static_cast<std::size_t>(ni)].push_back(
        cluster.AddDevice(cpu));
    island_of.push_back(-1);
    for (int g = 0; g < options.gpus_per_node; ++g) {
      DeviceSpec gpu;
      gpu.name = prefix + "/gpu:" + std::to_string(g);
      gpu.kind = DeviceKind::kGPU;
      gpu.gflops = options.per_gpu_gflops.empty()
                       ? options.gpu_gflops
                       : options.per_gpu_gflops[static_cast<std::size_t>(g) %
                                                options.per_gpu_gflops.size()];
      gpu.mem_bw_gbps = options.gpu_mem_bw_gbps;
      gpu.launch_overhead_us = options.gpu_launch_overhead_us;
      gpu.memory_bytes =
          options.per_gpu_memory_bytes.empty()
              ? options.gpu_memory_bytes
              : options
                    .per_gpu_memory_bytes[static_cast<std::size_t>(g) %
                                          options.per_gpu_memory_bytes.size()];
      node_devices[static_cast<std::size_t>(ni)].push_back(
          cluster.AddDevice(gpu));
      island_of.push_back(g / options.island_size);
    }
  }

  const LinkSpec nvlink{options.nvlink_gbps, options.nvlink_latency_us};
  const LinkSpec pcie{options.pcie_gbps, options.pcie_latency_us};
  const LinkSpec ib{options.ib_gbps, options.ib_latency_us};
  // Channel labels: node ni's PCIe root complex is 2*ni, its NIC egress
  // queue is 2*ni + 1. NVLink lanes are point-to-point and keep their
  // default per-pair channels.
  for (int ni = 0; ni < options.num_nodes; ++ni) {
    for (int nj = 0; nj < options.num_nodes; ++nj) {
      for (DeviceId a : node_devices[static_cast<std::size_t>(ni)]) {
        for (DeviceId b : node_devices[static_cast<std::size_t>(nj)]) {
          if (a == b) continue;
          if (ni != nj) {
            cluster.SetLink(a, b, ib);
            if (options.shared_nic) cluster.SetLinkChannel(a, b, 2 * ni + 1);
            continue;
          }
          const bool both_gpu =
              cluster.device(a).kind == DeviceKind::kGPU &&
              cluster.device(b).kind == DeviceKind::kGPU;
          if (both_gpu && island_of[static_cast<std::size_t>(a)] ==
                              island_of[static_cast<std::size_t>(b)]) {
            cluster.SetLink(a, b, nvlink);
          } else {
            cluster.SetLink(a, b, pcie);
            if (options.shared_pcie_root) cluster.SetLinkChannel(a, b, 2 * ni);
          }
        }
      }
    }
  }
  return cluster;
}

ClusterSpec MakeTwoNodeNvlinkIbCluster() {
  HierarchicalClusterOptions options;
  options.num_nodes = 2;
  options.gpus_per_node = 4;
  options.island_size = 4;  // each node is one fully NVLink-connected island
  return MakeHierarchicalCluster(options);
}

ClusterSpec MakeMixedSpeedCluster() {
  HierarchicalClusterOptions options;
  options.num_nodes = 1;
  options.gpus_per_node = 4;
  options.island_size = 1;  // no NVLink: everything crosses the PCIe root
  // Two P100-class cards plus two older, slower cards with more memory:
  // the placer has to weigh speed against capacity instead of spreading
  // uniformly.
  options.per_gpu_gflops = {2500.0, 2500.0, 900.0, 900.0};
  options.per_gpu_memory_bytes = {
      static_cast<std::int64_t>(11.0 * (1LL << 30)),
      static_cast<std::int64_t>(11.0 * (1LL << 30)), 21LL << 30, 21LL << 30};
  return MakeHierarchicalCluster(options);
}

}  // namespace eagle::sim
