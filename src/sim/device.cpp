#include "sim/device.h"

#include <cmath>
#include <sstream>

#include "support/check.h"

namespace eagle::sim {

DeviceId ClusterSpec::AddDevice(DeviceSpec spec) {
  const auto id = static_cast<DeviceId>(devices_.size());
  devices_.push_back(std::move(spec));
  // Grow the link matrices, preserving existing entries.
  const int n = num_devices();
  std::vector<LinkSpec> links(static_cast<std::size_t>(n) *
                              static_cast<std::size_t>(n));
  std::vector<int> channels(static_cast<std::size_t>(n) *
                                static_cast<std::size_t>(n),
                            -1);
  for (int s = 0; s + 1 < n; ++s) {
    for (int d = 0; d + 1 < n; ++d) {
      const auto to = static_cast<std::size_t>(s) *
                          static_cast<std::size_t>(n) +
                      static_cast<std::size_t>(d);
      const auto from = static_cast<std::size_t>(s) *
                            static_cast<std::size_t>(n - 1) +
                        static_cast<std::size_t>(d);
      links[to] = links_[from];
      channels[to] = link_channels_[from];
    }
  }
  links_ = std::move(links);
  link_channels_ = std::move(channels);
  return id;
}

void ClusterSpec::SetLinkChannel(DeviceId src, DeviceId dst, int channel) {
  const int n = num_devices();
  EAGLE_CHECK(src >= 0 && src < n && dst >= 0 && dst < n && channel >= 0);
  link_channels_[static_cast<std::size_t>(src) * static_cast<std::size_t>(n) +
                 static_cast<std::size_t>(dst)] = channel;
}

int ClusterSpec::link_channel(DeviceId src, DeviceId dst) const {
  const int n = num_devices();
  EAGLE_CHECK(src >= 0 && src < n && dst >= 0 && dst < n);
  const int custom =
      link_channels_[static_cast<std::size_t>(src) *
                         static_cast<std::size_t>(n) +
                     static_cast<std::size_t>(dst)];
  // Custom channels occupy [0, n*n); default per-pair channels are offset
  // past them so the two ranges never collide.
  return custom >= 0 ? custom : n * n + src * n + dst;
}

int ClusterSpec::num_link_channels() const {
  const int n = num_devices();
  return 2 * n * n;
}

void ClusterSpec::SetLink(DeviceId src, DeviceId dst, LinkSpec link) {
  const int n = num_devices();
  EAGLE_CHECK(src >= 0 && src < n && dst >= 0 && dst < n);
  links_[static_cast<std::size_t>(src) * static_cast<std::size_t>(n) +
         static_cast<std::size_t>(dst)] = link;
}

const DeviceSpec& ClusterSpec::device(DeviceId id) const {
  EAGLE_CHECK_MSG(id >= 0 && id < num_devices(),
                  "device id " << id << " out of range");
  return devices_[static_cast<std::size_t>(id)];
}

const LinkSpec& ClusterSpec::link(DeviceId src, DeviceId dst) const {
  const int n = num_devices();
  EAGLE_CHECK(src >= 0 && src < n && dst >= 0 && dst < n);
  return links_[static_cast<std::size_t>(src) * static_cast<std::size_t>(n) +
                static_cast<std::size_t>(dst)];
}

DeviceId ClusterSpec::FirstCpu() const {
  for (DeviceId i = 0; i < num_devices(); ++i) {
    if (device(i).kind == DeviceKind::kCPU) return i;
  }
  return -1;
}

std::vector<DeviceId> ClusterSpec::Gpus() const {
  std::vector<DeviceId> out;
  for (DeviceId i = 0; i < num_devices(); ++i) {
    if (device(i).kind == DeviceKind::kGPU) out.push_back(i);
  }
  return out;
}

namespace {

// A rate the cost model divides by: must be a positive finite number.
bool ValidRate(double v) { return std::isfinite(v) && v > 0.0; }
// An additive cost term: must be a non-negative finite number.
bool ValidCost(double v) { return std::isfinite(v) && v >= 0.0; }

}  // namespace

support::Status ClusterSpec::Validate() const {
  using support::ErrorCode;
  using support::Status;
  if (devices_.empty()) {
    return Status::Error(ErrorCode::kSyntax, "cluster has no devices");
  }
  std::ostringstream os;
  for (DeviceId i = 0; i < num_devices(); ++i) {
    const DeviceSpec& d = device(i);
    if (!ValidRate(d.gflops)) {
      os << "device " << i << " ('" << d.name << "'): gflops must be a "
         << "positive finite number, got " << d.gflops;
      return Status::Error(ErrorCode::kNumericOverflow, os.str());
    }
    if (!ValidRate(d.mem_bw_gbps)) {
      os << "device " << i << " ('" << d.name << "'): mem_bw_gbps must be a "
         << "positive finite number, got " << d.mem_bw_gbps;
      return Status::Error(ErrorCode::kNumericOverflow, os.str());
    }
    if (!ValidCost(d.launch_overhead_us)) {
      os << "device " << i << " ('" << d.name << "'): launch_overhead_us "
         << "must be a non-negative finite number, got "
         << d.launch_overhead_us;
      return Status::Error(ErrorCode::kNumericOverflow, os.str());
    }
    if (d.memory_bytes < 0) {
      os << "device " << i << " ('" << d.name << "'): memory_bytes must be "
         << "non-negative, got " << d.memory_bytes;
      return Status::Error(ErrorCode::kNumericOverflow, os.str());
    }
  }
  for (DeviceId s = 0; s < num_devices(); ++s) {
    for (DeviceId d = 0; d < num_devices(); ++d) {
      if (s == d) continue;  // the diagonal is never consulted
      const LinkSpec& l = link(s, d);
      if (!ValidRate(l.bandwidth_gbps)) {
        os << "link " << s << "->" << d << ": bandwidth_gbps must be a "
           << "positive finite number, got " << l.bandwidth_gbps;
        return Status::Error(ErrorCode::kNumericOverflow, os.str());
      }
      if (!ValidCost(l.latency_us)) {
        os << "link " << s << "->" << d << ": latency_us must be a "
           << "non-negative finite number, got " << l.latency_us;
        return Status::Error(ErrorCode::kNumericOverflow, os.str());
      }
    }
  }
  return Status::Ok();
}

std::string ClusterSpec::ToString() const {
  std::ostringstream os;
  for (DeviceId i = 0; i < num_devices(); ++i) {
    const auto& d = device(i);
    os << d.name << " (" << (d.kind == DeviceKind::kGPU ? "GPU" : "CPU")
       << ", " << d.gflops << " GFLOPS, "
       << static_cast<double>(d.memory_bytes) / (1 << 30) << " GB)";
    if (i + 1 < num_devices()) os << ", ";
  }
  return os.str();
}

ClusterSpec MakeDefaultCluster(const ClusterOptions& options) {
  ClusterSpec cluster;
  DeviceSpec cpu;
  cpu.name = "/cpu:0";
  cpu.kind = DeviceKind::kCPU;
  cpu.gflops = options.cpu_gflops;
  cpu.mem_bw_gbps = 60.0;
  cpu.launch_overhead_us = 25.0;
  cpu.memory_bytes = 120LL << 30;  // 125 GB host RAM in the paper's machine
  const DeviceId cpu_id = cluster.AddDevice(cpu);

  std::vector<DeviceId> gpus;
  for (int i = 0; i < options.num_gpus; ++i) {
    DeviceSpec gpu;
    gpu.name = "/gpu:" + std::to_string(i);
    gpu.kind = DeviceKind::kGPU;
    gpu.gflops = options.gpu_gflops;
    gpu.mem_bw_gbps = 550.0;
    gpu.launch_overhead_us = 50.0;
    gpu.memory_bytes = options.gpu_memory_bytes;
    gpus.push_back(cluster.AddDevice(gpu));
  }

  LinkSpec host_link{options.pcie_gbps, options.pcie_latency_us};
  // GPU peer-to-peer traffic crosses the PCIe switch: a bit slower.
  LinkSpec peer_link{options.pcie_gbps * 0.8, options.pcie_latency_us * 1.3};
  for (DeviceId g : gpus) {
    cluster.SetLink(cpu_id, g, host_link);
    cluster.SetLink(g, cpu_id, host_link);
    if (options.shared_host_bus) {
      cluster.SetLinkChannel(cpu_id, g, 0);
      cluster.SetLinkChannel(g, cpu_id, 0);
    }
    for (DeviceId other : gpus) {
      if (g != other) cluster.SetLink(g, other, peer_link);
    }
  }
  return cluster;
}

ClusterSpec MakeScaledCluster(double memory_scale,
                              const ClusterOptions& options) {
  EAGLE_CHECK(memory_scale > 0.0);
  ClusterOptions scaled = options;
  scaled.gpu_memory_bytes = static_cast<std::int64_t>(
      static_cast<double>(options.gpu_memory_bytes) * memory_scale);
  return MakeDefaultCluster(scaled);
}

}  // namespace eagle::sim
