// MeasurementSession: the paper's placement-evaluation protocol (§IV-C).
//
// "We evaluate each placement sampled from the policy by running it for 15
//  steps ... discard the first 5 warm-up steps and average the per-step
//  time over the last 10."
//
// The simulator is deterministic, so the protocol's effect here is
// (a) the *virtual clock* cost a sample charges to the RL training budget
//     (session setup + parameter placement + 15 steps), which is what the
//     x-axes of Figs. 2 and 5–7 measure, and
// (b) optional multiplicative measurement noise on the reported per-step
//     time, mimicking real jitter the agents must average over.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/simulator.h"
#include "support/rng.h"

namespace eagle::sim {

struct MeasurementOptions {
  int total_steps = 15;
  int warmup_steps = 5;
  // Graph-rewrite + variable-init + session-startup cost per evaluated
  // placement. The paper reports ~1 minute to evaluate a 10-step NMT
  // placement; this constant reproduces that scale.
  double session_overhead_seconds = 20.0;
  // Relative std-dev of per-step measurement noise (0 disables).
  double noise_stddev = 0.01;
};

struct EvalResult {
  bool valid = false;              // false == OOM (invalid placement)
  double per_step_seconds = 0.0;   // average over measured steps (noisy)
  double true_per_step_seconds = 0.0;  // noiseless, for final reporting
  double measurement_cost_seconds = 0.0;  // virtual wall-clock consumed
  StepResult step;                 // details of the simulated step

  std::string ToString() const;
};

class MeasurementSession {
 public:
  MeasurementSession(const graph::OpGraph& graph, const ClusterSpec& cluster,
                     MeasurementOptions options = {},
                     SimulatorOptions sim_options = {});

  // Evaluates a (normalized) placement. `rng` drives measurement noise;
  // pass nullptr for a noiseless evaluation.
  EvalResult Evaluate(const Placement& placement,
                      support::Rng* rng = nullptr) const;

  const ExecutionSimulator& simulator() const { return simulator_; }
  const MeasurementOptions& options() const { return options_; }

 private:
  ExecutionSimulator simulator_;
  MeasurementOptions options_;
};

}  // namespace eagle::sim
