// MeasurementSession: the paper's placement-evaluation protocol (§IV-C).
//
// "We evaluate each placement sampled from the policy by running it for 15
//  steps ... discard the first 5 warm-up steps and average the per-step
//  time over the last 10."
//
// The simulator is deterministic, so the protocol's effect here is
// (a) the *virtual clock* cost a sample charges to the RL training budget
//     (session setup + parameter placement + 15 steps), which is what the
//     x-axes of Figs. 2 and 5–7 measure, and
// (b) optional multiplicative measurement noise on the reported per-step
//     time, mimicking real jitter the agents must average over.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/fault.h"
#include "sim/simulator.h"
#include "support/rng.h"

namespace eagle::sim {

struct MeasurementOptions {
  int total_steps = 15;
  int warmup_steps = 5;
  // Graph-rewrite + variable-init + session-startup cost per evaluated
  // placement. The paper reports ~1 minute to evaluate a 10-step NMT
  // placement; this constant reproduces that scale.
  double session_overhead_seconds = 20.0;
  // Relative std-dev of per-step measurement noise (0 disables).
  double noise_stddev = 0.01;
};

// Multiplicative measurement-noise factor. Clamped to [0.5, 2.0] so no
// noise_stddev can yield a non-positive (or absurd) per-step time — a
// real harness would reject such a reading as a failed measurement.
double NoiseFactor(double noise_stddev, support::Rng& rng);

struct EvalResult {
  bool valid = false;              // false == OOM (invalid placement)
  // True when the measurement never produced a number (session crash,
  // device down, or timeout on every retry). `valid` is false too; the
  // environment charges the invalid-placement penalty.
  bool failed = false;
  int attempts = 1;                // measurement attempts consumed
  double per_step_seconds = 0.0;   // average over measured steps (noisy)
  double true_per_step_seconds = 0.0;  // noiseless, for final reporting
  double measurement_cost_seconds = 0.0;  // virtual wall-clock consumed
  StepResult step;                 // details of the simulated step

  std::string ToString() const;
};

class MeasurementSession {
 public:
  MeasurementSession(const graph::OpGraph& graph, const ClusterSpec& cluster,
                     MeasurementOptions options = {},
                     SimulatorOptions sim_options = {});

  // Evaluates a (normalized) placement. `rng` drives measurement noise;
  // pass nullptr for a noiseless evaluation.
  EvalResult Evaluate(const Placement& placement,
                      support::Rng* rng = nullptr) const;

  // One measurement attempt under injected faults. A session crash or a
  // placement touching a down device returns failed=true after charging
  // the session setup; perf faults (stragglers, degraded links) complete
  // with degraded measured/cost times. true_per_step_seconds is NOT
  // filled here (it is the healthy machine's number — the environment
  // supplies it from the fault-free evaluation).
  EvalResult EvaluateWithFaults(const Placement& placement,
                                const FaultDraw& faults,
                                support::Rng* rng = nullptr) const;

  const ExecutionSimulator& simulator() const { return simulator_; }
  const MeasurementOptions& options() const { return options_; }

 private:
  EvalResult Measure(const Placement& placement, const FaultDraw* faults,
                     support::Rng* rng) const;

  ExecutionSimulator simulator_;
  MeasurementOptions options_;
};

}  // namespace eagle::sim
