#include "sim/delta.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "sim/cost_model.h"
#include "sim/fault.h"
#include "sim/placement.h"
#include "sim/simulator.h"
#include "support/check.h"

namespace eagle::sim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// The full simulator's global pick order is lexicographic in
// (start, -priority, device) once every op's compute time is strictly
// positive (see delta.h header comment); this is the comparator both
// merges reconstruct it with.
bool PickKeyLess(double start_a, int prio_a, DeviceId dev_a, double start_b,
                 int prio_b, DeviceId dev_b) {
  if (start_a != start_b) return start_a < start_b;
  if (prio_a != prio_b) return prio_a > prio_b;
  return dev_a < dev_b;
}

double ComputeScale(const DeltaContext& ctx, DeviceId d) {
  return ctx.had_faults ? ctx.fault_compute[static_cast<std::size_t>(d)] : 1.0;
}

double LinkScale(const DeltaContext& ctx, int channel) {
  return ctx.had_faults ? ctx.fault_link[static_cast<std::size_t>(channel)]
                        : 1.0;
}

std::size_t Slot(graph::OpId op, DeviceId device, int num_devices) {
  return static_cast<std::size_t>(op) * static_cast<std::size_t>(num_devices) +
         static_cast<std::size_t>(device);
}

// Replay-time transfer dedup over the context's flat slots (same scheme
// as SimWorkspace: primary slot + slot-local overflow chain).
const double* RtLookup(const DeltaContext& ctx, graph::OpId p, DeviceId d,
                       std::int64_t bytes) {
  const std::size_t slot = Slot(p, d, ctx.num_devices);
  if (ctx.rt_epoch[slot] != ctx.run_epoch) return nullptr;
  if (ctx.rt_bytes[slot] == bytes) return &ctx.rt_arrival[slot];
  for (std::uint32_t idx = ctx.rt_overflow_head[slot]; idx != 0;) {
    const auto& o = ctx.rt_overflow[idx - 1];
    if (o.bytes == bytes) return &o.arrival;
    idx = o.next;
  }
  return nullptr;
}

void RtInsert(DeltaContext& ctx, graph::OpId p, DeviceId d, std::int64_t bytes,
              double arrival) {
  const std::size_t slot = Slot(p, d, ctx.num_devices);
  if (ctx.rt_epoch[slot] != ctx.run_epoch) {
    ctx.rt_epoch[slot] = ctx.run_epoch;
    ctx.rt_bytes[slot] = bytes;
    ctx.rt_arrival[slot] = arrival;
    ctx.rt_overflow_head[slot] = 0;
  } else {
    ctx.rt_overflow.push_back({bytes, arrival, ctx.rt_overflow_head[slot]});
    ctx.rt_overflow_head[slot] =
        static_cast<std::uint32_t>(ctx.rt_overflow.size());
  }
}

// Rebuilds the cached-transfer index (see delta.h) from ctx.transfers.
void RebuildCachedTransferIndex(DeltaContext& ctx) {
  const auto flat = static_cast<std::size_t>(ctx.num_ops) *
                    static_cast<std::size_t>(ctx.num_devices);
  if (ctx.ct_gen.size() != flat) {
    ctx.ct_gen.assign(flat, 0);
    ctx.ct_bytes.resize(flat);
    ctx.ct_index.resize(flat);
    ctx.ct_overflow_head.resize(flat);
    ctx.ct_generation = 0;
  }
  if (++ctx.ct_generation == 0) {
    std::fill(ctx.ct_gen.begin(), ctx.ct_gen.end(), 0u);
    ctx.ct_generation = 1;
  }
  ctx.ct_overflow.clear();
  for (std::size_t i = 0; i < ctx.transfers.size(); ++i) {
    const DeltaTransfer& t = ctx.transfers[i];
    const std::size_t slot = Slot(t.producer, t.dst, ctx.num_devices);
    if (ctx.ct_gen[slot] != ctx.ct_generation) {
      ctx.ct_gen[slot] = ctx.ct_generation;
      ctx.ct_bytes[slot] = t.bytes;
      ctx.ct_index[slot] = static_cast<std::uint32_t>(i);
      ctx.ct_overflow_head[slot] = 0;
    } else {
      ctx.ct_overflow.push_back({t.bytes, static_cast<std::uint32_t>(i),
                                 ctx.ct_overflow_head[slot]});
      ctx.ct_overflow_head[slot] =
          static_cast<std::uint32_t>(ctx.ct_overflow.size());
    }
  }
}

const DeltaTransfer* CtLookup(const DeltaContext& ctx, graph::OpId p,
                              DeviceId d, std::int64_t bytes) {
  const std::size_t slot = Slot(p, d, ctx.num_devices);
  if (ctx.ct_gen[slot] != ctx.ct_generation) return nullptr;
  if (ctx.ct_bytes[slot] == bytes) return &ctx.transfers[ctx.ct_index[slot]];
  for (std::uint32_t idx = ctx.ct_overflow_head[slot]; idx != 0;) {
    const auto& o = ctx.ct_overflow[idx - 1];
    if (o.bytes == bytes) return &ctx.transfers[o.index];
    idx = o.next;
  }
  return nullptr;
}

// First out-edge position of `p` demanding (`bytes` → device `d`) under
// `placement` — the ordinal at which the dedup'd transfer is created in a
// fresh run of that placement. -1 when no edge demands it.
std::int32_t FirstFanoutOrdinal(const graph::OpGraph& g,
                                const Placement& placement, graph::OpId p,
                                DeviceId d, std::int64_t bytes) {
  const auto& oes = g.out_edges(p);
  for (std::size_t i = 0; i < oes.size(); ++i) {
    const graph::Edge& e = g.edges()[static_cast<std::size_t>(oes[i])];
    if (e.bytes == bytes && placement.device(e.dst) == d) {
      return static_cast<std::int32_t>(i);
    }
  }
  return -1;
}

// Fills the caller-visible result from the (already advanced) cache.
void BuildResult(const DeltaContext& ctx, bool record_schedule,
                 StepResult* out) {
  const auto num_devices = static_cast<std::size_t>(ctx.num_devices);
  out->oom = ctx.oom;
  out->oom_device = ctx.oom_device;
  out->step_seconds = ctx.step_seconds;
  out->device_busy_seconds.assign(num_devices, 0.0);
  for (std::size_t d = 0; d < num_devices; ++d) {
    if (!ctx.dev_busy[d].empty()) {
      out->device_busy_seconds[d] = ctx.dev_busy[d].back();
    }
  }
  out->device_peak_bytes = ctx.peak_bytes;
  out->device_param_bytes = ctx.param_bytes;
  out->transfer_seconds_total = ctx.transfer_seconds_total;
  out->transfer_bytes_total = ctx.transfer_bytes_total;
  out->num_transfers = ctx.num_transfers;
  out->schedule.clear();
  out->transfers.clear();
  if (record_schedule) {
    out->schedule.reserve(ctx.pick_order.size());
    for (const graph::OpId u : ctx.pick_order) {
      const auto i = static_cast<std::size_t>(u);
      out->schedule.push_back(
          ScheduledOp{u, ctx.devices[i], ctx.start[i], ctx.finish[i]});
    }
    out->transfers.reserve(ctx.transfers.size());
    for (const DeltaTransfer& t : ctx.transfers) {
      out->transfers.push_back(ScheduledTransfer{t.producer, t.src, t.dst,
                                                 t.bytes, t.xfer_start,
                                                 t.arrival});
    }
  }
}

}  // namespace

void RefreshDeltaContext(const DeltaRunInputs& in, const Placement& placement,
                         const FaultDraw* faults, const StepResult& full,
                         DeltaContext& ctx) {
  const graph::OpGraph& g = *in.graph;
  const ClusterSpec& cluster = *in.cluster;
  const CostModel& cost = *in.cost_model;
  const int num_ops = g.num_ops();
  const int num_devices = cluster.num_devices();
  const int num_channels = cluster.num_link_channels();
  const auto ops = static_cast<std::size_t>(num_ops);
  const auto devs = static_cast<std::size_t>(num_devices);
  const auto chans = static_cast<std::size_t>(num_channels);
  const auto flat = ops * devs;

  ctx.valid = false;
  ctx.zero_cost_ops = false;
  ctx.num_ops = num_ops;
  ctx.num_devices = num_devices;
  ctx.num_channels = num_channels;
  ctx.track_memory = in.options->track_memory;
  ctx.had_faults = faults != nullptr;
  if (faults != nullptr) {
    ctx.fault_compute = faults->device_compute_scale;
    ctx.fault_link = faults->link_scale;
  } else {
    ctx.fault_compute.clear();
    ctx.fault_link.clear();
  }
  EAGLE_CHECK_MSG(full.schedule.size() == ops,
                  "delta refresh requires a recorded schedule");

  ctx.devices = placement.devices();
  ctx.start.resize(ops);
  ctx.finish.resize(ops);
  ctx.compute.resize(ops);
  ctx.pick_order.clear();
  ctx.pick_order.reserve(ops);
  ctx.dev_ops.resize(devs);
  ctx.dev_busy.resize(devs);
  for (std::size_t d = 0; d < devs; ++d) {
    ctx.dev_ops[d].clear();
    ctx.dev_busy[d].clear();
  }
  ctx.transfers.clear();
  ctx.ch_transfers.resize(chans);
  for (auto& c : ctx.ch_transfers) c.clear();
  ctx.intervals.resize(devs);
  for (auto& v : ctx.intervals) v.clear();
  ctx.slot_gen.resize(flat, 0);
  ctx.slot_index.resize(flat);
  if (++ctx.generation == 0) {
    std::fill(ctx.slot_gen.begin(), ctx.slot_gen.end(), 0u);
    ctx.generation = 1;
  }

  // Pass 1: per-op times and per-device order / busy prefix sums. The
  // busy sums re-add the exact compute doubles the full run added, in the
  // same order, so a kept prefix later reproduces the full run's
  // accumulation bit-for-bit. While here, verify the strictly-increasing
  // per-device start property the merge comparator depends on.
  for (const ScheduledOp& s : full.schedule) {
    const graph::OpId u = s.op;
    const auto ui = static_cast<std::size_t>(u);
    const DeviceId d = s.device;
    const auto di = static_cast<std::size_t>(d);
    EAGLE_DCHECK(placement.device(u) == d);
    ctx.start[ui] = s.start_seconds;
    ctx.finish[ui] = s.end_seconds;
    const double comp =
        cost.ComputeSeconds(g.op(u), d) * ComputeScale(ctx, d);
    ctx.compute[ui] = comp;
    if (!(s.end_seconds > s.start_seconds)) ctx.zero_cost_ops = true;
    if (!ctx.dev_ops[di].empty()) {
      const auto prev = static_cast<std::size_t>(ctx.dev_ops[di].back());
      if (!(s.start_seconds > ctx.start[prev])) ctx.zero_cost_ops = true;
    }
    ctx.dev_ops[di].push_back(u);
    const double busy =
        (ctx.dev_busy[di].empty() ? 0.0 : ctx.dev_busy[di].back()) + comp;
    ctx.dev_busy[di].push_back(busy);
    ctx.pick_order.push_back(u);
  }
  if (ctx.zero_cost_ops) return;  // permanently ineligible for this graph

  // Pass 2 (schedule order): reconstruct each transfer's creating edge
  // ordinal by mirroring the out-edge dedup, and rebuild the liveness
  // intervals by replaying the full run's touch order exactly.
  const bool track_memory = ctx.track_memory;
  const auto touch = [&ctx, num_devices, track_memory](
                         graph::OpId producer, DeviceId device, double start,
                         double end, std::int64_t bytes) {
    if (!track_memory || bytes <= 0) return;
    const std::size_t slot = Slot(producer, device, num_devices);
    auto& ivs = ctx.intervals[static_cast<std::size_t>(device)];
    if (ctx.slot_gen[slot] != ctx.generation) {
      ctx.slot_gen[slot] = ctx.generation;
      ctx.slot_index[slot] = static_cast<std::uint32_t>(ivs.size());
      ivs.push_back(DeltaInterval{producer, LiveInterval{start, end, bytes}});
    } else {
      auto& iv = ivs[ctx.slot_index[slot]].iv;
      iv.start = std::min(iv.start, start);
      iv.end = std::max(iv.end, end);
    }
  };

  std::size_t ti = 0;
  for (const graph::OpId u : ctx.pick_order) {
    const auto ui = static_cast<std::size_t>(u);
    const DeviceId d = ctx.devices[ui];
    touch(u, d, ctx.finish[ui], ctx.finish[ui], g.op(u).output_bytes());
    ctx.seen_bytes.clear();
    const auto& out_edges = g.out_edges(u);
    for (std::size_t oe = 0; oe < out_edges.size(); ++oe) {
      const graph::Edge& e =
          g.edges()[static_cast<std::size_t>(out_edges[oe])];
      const DeviceId dst_dev = ctx.devices[static_cast<std::size_t>(e.dst)];
      if (dst_dev == d) continue;
      bool seen = false;
      for (const auto& sb : ctx.seen_bytes) {
        if (sb.first == dst_dev && sb.second == e.bytes) {
          seen = true;
          break;
        }
      }
      if (seen) continue;
      ctx.seen_bytes.emplace_back(dst_dev, e.bytes);
      EAGLE_CHECK_MSG(ti < full.transfers.size(),
                      "recorded transfers do not match the schedule");
      const ScheduledTransfer& tr = full.transfers[ti++];
      EAGLE_DCHECK(tr.producer == u && tr.dst == dst_dev &&
                   tr.bytes == e.bytes);
      const int channel = cluster.link_channel(d, dst_dev);
      const double xfer = cost.TransferSeconds(d, dst_dev, e.bytes) *
                          LinkScale(ctx, channel);
      ctx.ch_transfers[static_cast<std::size_t>(channel)].push_back(
          static_cast<std::int32_t>(ctx.transfers.size()));
      ctx.transfers.push_back(DeltaTransfer{
          u, d, dst_dev, e.bytes, static_cast<std::int32_t>(oe), channel,
          tr.start_seconds, tr.end_seconds, xfer});
      touch(u, dst_dev, tr.end_seconds, tr.end_seconds, e.bytes);
    }
    if (track_memory) {
      for (const auto ei : g.in_edges(u)) {
        const graph::Edge& e = g.edges()[static_cast<std::size_t>(ei)];
        const auto si = static_cast<std::size_t>(e.src);
        touch(e.src, d, ctx.start[ui], ctx.finish[ui],
              ctx.devices[si] == d ? g.op(e.src).output_bytes() : e.bytes);
      }
    }
  }
  EAGLE_CHECK_MSG(ti == full.transfers.size(),
                  "recorded transfers do not match the schedule");

  // Summary state, straight from the verified full result.
  ctx.oom = full.oom;
  ctx.oom_device = full.oom_device;
  ctx.step_seconds = full.step_seconds;
  ctx.transfer_seconds_total = full.transfer_seconds_total;
  ctx.transfer_bytes_total = full.transfer_bytes_total;
  ctx.num_transfers = full.num_transfers;
  ctx.param_bytes = full.device_param_bytes;
  ctx.peak_bytes = full.device_peak_bytes;
  ctx.act_bytes.assign(devs, 0);
  if (track_memory) {
    for (std::size_t d = 0; d < devs; ++d) {
      ctx.iv_scratch.clear();
      for (const DeltaInterval& di : ctx.intervals[d]) {
        ctx.iv_scratch.push_back(di.iv);
      }
      ctx.act_bytes[d] = PeakLiveBytes(ctx.iv_scratch, ctx.event_scratch);
    }
  }
  RebuildCachedTransferIndex(ctx);
  ctx.valid = true;
}

bool TryDeltaRun(const DeltaRunInputs& in, const Placement& placement,
                 const FaultDraw* faults, bool record_schedule,
                 DeltaContext& ctx, StepResult* out) {
  const graph::OpGraph& g = *in.graph;
  const ClusterSpec& cluster = *in.cluster;
  const CostModel& cost = *in.cost_model;
  const std::vector<int>& prio = *in.critical_priority;
  const int num_ops = g.num_ops();
  const int num_devices = cluster.num_devices();
  const int num_channels = cluster.num_link_channels();

  if (!ctx.valid || ctx.zero_cost_ops || ctx.num_ops != num_ops ||
      ctx.num_devices != num_devices || ctx.num_channels != num_channels ||
      ctx.track_memory != in.options->track_memory) {
    return false;
  }
  if ((faults != nullptr) != ctx.had_faults) return false;
  if (faults != nullptr &&
      (faults->device_compute_scale != ctx.fault_compute ||
       faults->link_scale != ctx.fault_link)) {
    return false;
  }
  EAGLE_CHECK(placement.num_ops() == num_ops);

  ctx.moved.clear();
  for (graph::OpId u = 0; u < num_ops; ++u) {
    if (placement.device(u) != ctx.devices[static_cast<std::size_t>(u)]) {
      ctx.moved.push_back(u);
    }
  }
  if (ctx.moved.empty()) {
    // Same placement as the cached run: serve the cache verbatim.
    BuildResult(ctx, record_schedule, out);
    ctx.stats.hits++;
    return true;
  }
  if (static_cast<int>(ctx.moved.size()) > in.options->delta.max_moved_ops) {
    return false;
  }

  // ---- scratch sizing (epoch-stamped; zero work when warm) ----
  const auto ops = static_cast<std::size_t>(num_ops);
  const auto devs = static_cast<std::size_t>(num_devices);
  const auto chans = static_cast<std::size_t>(num_channels);
  const auto flat = ops * devs;
  const std::size_t num_edges = g.edges().size();
  if (ctx.invalid_epoch.size() != ops || ctx.rt_epoch.size() != flat ||
      ctx.edge_unresolved_epoch.size() != num_edges) {
    ctx.invalid_epoch.assign(ops, 0);
    ctx.lb_epoch.assign(ops, 0);
    ctx.lb.resize(ops);
    ctx.lb_finish.resize(ops);
    ctx.ready_epoch.assign(ops, 0);
    ctx.ready_time.resize(ops);
    ctx.pending_epoch.assign(ops, 0);
    ctx.pending_inputs.resize(ops);
    ctx.rt_epoch.assign(flat, 0);
    ctx.rt_bytes.resize(flat);
    ctx.rt_arrival.resize(flat);
    ctx.rt_overflow_head.resize(flat);
    ctx.edge_unresolved_epoch.assign(num_edges, 0);
    ctx.slot_dirty_epoch.assign(flat, 0);
    ctx.run_epoch = 0;
  }
  if (++ctx.run_epoch == 0) {
    std::fill(ctx.invalid_epoch.begin(), ctx.invalid_epoch.end(), 0u);
    std::fill(ctx.lb_epoch.begin(), ctx.lb_epoch.end(), 0u);
    std::fill(ctx.ready_epoch.begin(), ctx.ready_epoch.end(), 0u);
    std::fill(ctx.pending_epoch.begin(), ctx.pending_epoch.end(), 0u);
    std::fill(ctx.rt_epoch.begin(), ctx.rt_epoch.end(), 0u);
    std::fill(ctx.edge_unresolved_epoch.begin(),
              ctx.edge_unresolved_epoch.end(), 0u);
    std::fill(ctx.slot_dirty_epoch.begin(), ctx.slot_dirty_epoch.end(), 0u);
    ctx.run_epoch = 1;
  }
  ctx.t_dev.assign(devs, kInf);
  ctx.t_ch.assign(chans, kInf);
  ctx.kept_dev.resize(devs);
  ctx.kept_ch.resize(chans);
  for (std::size_t d = 0; d < devs; ++d) {
    ctx.kept_dev[d] = static_cast<std::int32_t>(ctx.dev_ops[d].size());
  }
  for (std::size_t c = 0; c < chans; ++c) {
    ctx.kept_ch[c] = static_cast<std::int32_t>(ctx.ch_transfers[c].size());
  }
  ctx.heaps.resize(devs);
  for (auto& h : ctx.heaps) h.clear();
  ctx.device_free.resize(devs);
  ctx.link_free.resize(chans);
  ctx.dev_dirty.assign(devs, 0);
  ctx.rt_overflow.clear();
  ctx.worklist.clear();
  ctx.emissions.clear();
  ctx.replay_pick_order.clear();
  ctx.replay_transfers.clear();
  ctx.merged_transfers.clear();
  ctx.merged_pick_order.clear();
  ctx.slot_candidates.clear();

  // ---- invalidation-cone closure ----
  const std::size_t cutover_limit = std::max<std::size_t>(
      ctx.moved.size(),
      static_cast<std::size_t>(in.options->delta.cutover_fraction *
                               static_cast<double>(num_ops)));
  std::size_t cone = 0;
  bool over = false;
  auto& invalid_list = ctx.worklist;
  const auto is_invalid = [&ctx](graph::OpId u) {
    return ctx.invalid_epoch[static_cast<std::size_t>(u)] == ctx.run_epoch;
  };
  const auto mark = [&ctx, &invalid_list, &cone, &over,
                     cutover_limit](graph::OpId u) {
    const auto i = static_cast<std::size_t>(u);
    if (ctx.invalid_epoch[i] == ctx.run_epoch) return;
    ctx.invalid_epoch[i] = ctx.run_epoch;
    invalid_list.push_back(u);
    if (++cone > cutover_limit) over = true;
  };
  // Disturbing device d at time t invalidates every cached op on d
  // starting at or after t (the kept prefix only ever shrinks).
  const auto lower_dev = [&ctx, &mark](DeviceId d, double t) {
    const auto di = static_cast<std::size_t>(d);
    if (!(t < ctx.t_dev[di])) return;
    ctx.t_dev[di] = t;
    auto& k = ctx.kept_dev[di];
    const auto& on_dev = ctx.dev_ops[di];
    while (k > 0 &&
           ctx.start[static_cast<std::size_t>(
               on_dev[static_cast<std::size_t>(k - 1)])] >= t) {
      --k;
      mark(on_dev[static_cast<std::size_t>(k)]);
    }
  };
  // A popped transfer's consumers must replay (dedup means one transfer
  // can feed many consumers).
  const auto mark_transfer_consumers = [&ctx, &g, &mark](
                                           const DeltaTransfer& tr) {
    for (const auto ei : g.out_edges(tr.producer)) {
      const graph::Edge& e = g.edges()[static_cast<std::size_t>(ei)];
      if (e.bytes == tr.bytes &&
          ctx.devices[static_cast<std::size_t>(e.dst)] == tr.dst) {
        mark(e.dst);
      }
    }
  };
  // Disturbing channel c at time t invalidates every cached transfer on c
  // starting at or after t, plus every op that consumed one. Sound for
  // *removals*: a transfer vanishing from the queue only shifts the
  // transfers behind it, and those all start at or after its slot.
  const auto lower_ch = [&ctx, &mark_transfer_consumers](int c, double t) {
    const auto ci = static_cast<std::size_t>(c);
    if (!(t < ctx.t_ch[ci])) return;
    ctx.t_ch[ci] = t;
    auto& k = ctx.kept_ch[ci];
    const auto& on_ch = ctx.ch_transfers[ci];
    while (k > 0) {
      const DeltaTransfer& tr = ctx.transfers[static_cast<std::size_t>(
          on_ch[static_cast<std::size_t>(k - 1)])];
      if (!(tr.xfer_start >= t)) break;
      --k;
      mark_transfer_consumers(tr);
    }
  };
  // Insertion cut: a channel is a FIFO in *producer pick order*, not in
  // start-time order, so a transfer (re)created by a producer whose new
  // pick start is at least `pick_start` joins the queue behind every
  // kept transfer from an earlier pick — and can displace every one from
  // a later pick, even those whose cached xfer_start precedes the new
  // transfer's (a channel-bound transfer starts the instant the link
  // frees; an earlier queue slot re-occupies exactly that instant). Pop
  // by creation order, then pull t_ch down to the popped frontier so the
  // time predicate the merge uses stays aligned with the kept prefix
  // (xfer_start is strictly increasing along a channel).
  const auto lower_ch_pick = [&ctx, &mark_transfer_consumers](
                                 int c, double pick_start) {
    const auto ci = static_cast<std::size_t>(c);
    auto& k = ctx.kept_ch[ci];
    const auto& on_ch = ctx.ch_transfers[ci];
    bool popped = false;
    while (k > 0) {
      const DeltaTransfer& tr = ctx.transfers[static_cast<std::size_t>(
          on_ch[static_cast<std::size_t>(k - 1)])];
      if (ctx.start[static_cast<std::size_t>(tr.producer)] < pick_start) {
        break;
      }
      --k;
      popped = true;
      mark_transfer_consumers(tr);
    }
    if (popped) {
      const double frontier =
          ctx.transfers[static_cast<std::size_t>(
                            on_ch[static_cast<std::size_t>(k)])]
              .xfer_start;
      if (frontier < ctx.t_ch[ci]) ctx.t_ch[ci] = frontier;
    }
  };

  for (const graph::OpId u : ctx.moved) mark(u);

  // LB(u) is a sound lower bound on an invalidated op's new ready time,
  // computed in dependency order from kept producers' cached finishes.
  // Passes iterate to a fixpoint because suffix invalidation can pull in
  // ops that are topologically earlier than ones already processed.
  const std::vector<graph::OpId>& topo = *in.topo;
  bool changed = true;
  int passes = 0;
  while (changed && !over) {
    changed = false;
    if (++passes > 64) return false;
    for (const graph::OpId u : topo) {
      if (over) break;
      if (!is_invalid(u)) continue;
      const auto ui = static_cast<std::size_t>(u);
      const DeviceId old_dev = ctx.devices[ui];
      const DeviceId new_dev = placement.device(u);
      double new_lb = 0.0;
      bool deferred = false;
      for (const auto ei : g.in_edges(u)) {
        const graph::Edge& e = g.edges()[static_cast<std::size_t>(ei)];
        const auto pi = static_cast<std::size_t>(e.src);
        // A sound lower bound on this input's new arrival: the producer
        // can't finish before its own start bound plus its compute, and a
        // cross-device payload additionally rides a transfer. Without the
        // compute/transfer terms the bound never grows downstream, and on
        // queue-dominated schedules (ready << start) the closure collapses
        // every device timeline toward t=0 — the whole graph invalidates.
        double bound;
        if (is_invalid(e.src)) {
          if (ctx.lb_epoch[pi] != ctx.run_epoch) {
            // Predecessor marked after its topo position this pass; its
            // LB arrives next pass.
            deferred = true;
            break;
          }
          bound = ctx.lb_finish[pi];
        } else {
          bound = ctx.finish[pi];
        }
        const DeviceId new_p = placement.device(e.src);
        if (new_p != new_dev) {
          const int channel = cluster.link_channel(new_p, new_dev);
          bound += cost.TransferSeconds(new_p, new_dev, e.bytes) *
                   LinkScale(ctx, channel);
        }
        new_lb = std::max(new_lb, bound);
      }
      if (deferred) {
        changed = true;
        continue;
      }
      if (ctx.lb_epoch[ui] == ctx.run_epoch && !(new_lb < ctx.lb[ui])) {
        continue;
      }
      ctx.lb_epoch[ui] = ctx.run_epoch;
      ctx.lb[ui] = new_lb;
      const double lb_finish = new_lb + cost.ComputeSeconds(g.op(u), new_dev) *
                                            ComputeScale(ctx, new_dev);
      ctx.lb_finish[ui] = lb_finish;
      changed = true;
      // Device cuts cover both schedules: an unmoved op can drift as
      // early as its new LB or vacate its cached slot; a moved op frees
      // its old device exactly at its cached start and lands on the new
      // one no earlier than its new LB.
      if (old_dev == new_dev) {
        lower_dev(old_dev, std::min(new_lb, ctx.start[ui]));
      } else {
        lower_dev(old_dev, ctx.start[ui]);
        lower_dev(new_dev, new_lb);
      }
      if (old_dev != new_dev) {
        // Only a *moved* op re-routes its incoming transfers; an invalid
        // op that stays put consumes bit-identical transfers from any
        // kept producer (invalid producers perturb their own
        // out-channels below). Send/recv dedup makes both sides
        // conditional: a cached transfer whose first demanding out-edge
        // ordinal is unchanged under the new placement is bit-identical
        // — losing one of its consumers (old side) or gaining this op
        // (new side) disturbs nothing, so no cut. (An invalid producer's
        // own out-edge pass re-cuts its channels regardless.)
        for (const auto ei : g.in_edges(u)) {
          const graph::Edge& e = g.edges()[static_cast<std::size_t>(ei)];
          const auto pi = static_cast<std::size_t>(e.src);
          const DeviceId old_p = ctx.devices[pi];
          const DeviceId new_p = placement.device(e.src);
          // A producer's new pick start is exactly its cached start when
          // kept, and no earlier than its ready-time LB when invalid.
          const double src_pick =
              is_invalid(e.src) ? ctx.lb[pi] : ctx.start[pi];
          if (old_p != old_dev) {
            const DeltaTransfer* tr = CtLookup(ctx, e.src, old_dev, e.bytes);
            if (tr == nullptr) {
              lower_ch_pick(cluster.link_channel(old_p, old_dev), src_pick);
            } else if (FirstFanoutOrdinal(g, placement, e.src, old_dev,
                                          e.bytes) != tr->ordinal) {
              lower_ch(cluster.link_channel(old_p, old_dev), tr->xfer_start);
            }
          }
          if (new_p != new_dev) {
            const DeltaTransfer* tr = CtLookup(ctx, e.src, new_dev, e.bytes);
            if (tr == nullptr || is_invalid(e.src) ||
                FirstFanoutOrdinal(g, placement, e.src, new_dev, e.bytes) !=
                    tr->ordinal) {
              lower_ch_pick(cluster.link_channel(new_p, new_dev), src_pick);
            }
          }
        }
      }
      for (const auto ei : g.out_edges(u)) {
        const graph::Edge& e = g.edges()[static_cast<std::size_t>(ei)];
        const auto wi = static_cast<std::size_t>(e.dst);
        mark(e.dst);  // downstream closure
        const DeviceId old_w = ctx.devices[wi];
        const DeviceId new_w = placement.device(e.dst);
        // A cached outgoing transfer is disturbed no earlier than its
        // cached start; a re-emitted one begins no earlier than the
        // finish bound. Applying both cuts also covers the unmoved case,
        // where they hit the same channel.
        if (old_dev != old_w) {
          const DeltaTransfer* tr = CtLookup(ctx, u, old_w, e.bytes);
          lower_ch(cluster.link_channel(old_dev, old_w),
                   tr != nullptr ? tr->xfer_start : ctx.finish[ui]);
        }
        if (new_dev != new_w) {
          lower_ch_pick(cluster.link_channel(new_dev, new_w), new_lb);
        }
      }
    }
  }
  if (over) return false;

  // ---- replay seeding ----
  for (std::size_t d = 0; d < devs; ++d) {
    const auto k = static_cast<std::size_t>(ctx.kept_dev[d]);
    ctx.device_free[d] =
        k > 0 ? ctx.finish[static_cast<std::size_t>(ctx.dev_ops[d][k - 1])]
              : 0.0;
  }
  for (std::size_t c = 0; c < chans; ++c) {
    const auto k = static_cast<std::size_t>(ctx.kept_ch[c]);
    ctx.link_free[c] =
        k > 0 ? ctx.transfers[static_cast<std::size_t>(
                                  ctx.ch_transfers[c][k - 1])]
                    .arrival
              : 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      const DeltaTransfer& tr =
          ctx.transfers[static_cast<std::size_t>(ctx.ch_transfers[c][i])];
      RtInsert(ctx, tr.producer, tr.dst, tr.bytes, tr.arrival);
    }
  }

  const auto cmp = std::greater<ReadyOp>();
  const auto push_ready = [&ctx, &cmp](DeviceId d, ReadyOp entry) {
    auto& h = ctx.heaps[static_cast<std::size_t>(d)];
    h.push_back(entry);
    std::push_heap(h.begin(), h.end(), cmp);
  };

  std::size_t remaining = invalid_list.size();
  for (const graph::OpId u : invalid_list) {
    const auto ui = static_cast<std::size_t>(u);
    const DeviceId new_u = placement.device(u);
    int pend = 0;
    double rdy = 0.0;
    for (const auto ei : g.in_edges(u)) {
      const graph::Edge& e = g.edges()[static_cast<std::size_t>(ei)];
      const auto pi = static_cast<std::size_t>(e.src);
      if (is_invalid(e.src)) {
        ++pend;
        continue;
      }
      const DeviceId dev_p = ctx.devices[pi];  // kept ⇒ unmoved
      EAGLE_DCHECK(placement.device(e.src) == dev_p);
      if (dev_p == new_u) {
        rdy = std::max(rdy, ctx.finish[pi]);
        continue;
      }
      const double* arr = RtLookup(ctx, e.src, new_u, e.bytes);
      if (arr != nullptr) {
        rdy = std::max(rdy, *arr);
        continue;
      }
      // Kept producer, invalid consumer, no kept transfer: the transfer
      // must be re-emitted at the producer's cached pick position.
      ++pend;
      ctx.edge_unresolved_epoch[static_cast<std::size_t>(ei)] = ctx.run_epoch;
      ctx.emissions.push_back(DeltaContext::Emission{
          ctx.start[pi], prio[pi], dev_p, e.src});
    }
    ctx.ready_epoch[ui] = ctx.run_epoch;
    ctx.ready_time[ui] = rdy;
    ctx.pending_epoch[ui] = ctx.run_epoch;
    ctx.pending_inputs[ui] = pend;
    if (pend == 0) {
      push_ready(new_u, ReadyOp{rdy, prio[ui], u});
    }
  }
  std::sort(ctx.emissions.begin(), ctx.emissions.end(),
            [](const DeltaContext::Emission& a,
               const DeltaContext::Emission& b) {
              if (a.pick_start != b.pick_start) {
                return a.pick_start < b.pick_start;
              }
              if (a.priority != b.priority) return a.priority > b.priority;
              if (a.device != b.device) return a.device < b.device;
              return a.producer < b.producer;
            });
  ctx.emissions.erase(
      std::unique(ctx.emissions.begin(), ctx.emissions.end(),
                  [](const DeltaContext::Emission& a,
                     const DeltaContext::Emission& b) {
                    return a.producer == b.producer;
                  }),
      ctx.emissions.end());

  const auto raise_ready = [&ctx](graph::OpId v, double t) {
    const auto i = static_cast<std::size_t>(v);
    EAGLE_DCHECK(ctx.ready_epoch[i] == ctx.run_epoch);
    if (t > ctx.ready_time[i]) ctx.ready_time[i] = t;
    return ctx.ready_time[i];
  };
  const auto dec_pending = [&ctx](graph::OpId v) {
    const auto i = static_cast<std::size_t>(v);
    EAGLE_DCHECK(ctx.pending_epoch[i] == ctx.run_epoch);
    return --ctx.pending_inputs[i];
  };
  // Creates (or dedups onto) a transfer producer→dst for out-edge
  // ordinal `oe`; shared by emissions and replayed picks.
  const auto send = [&ctx, &cluster, &cost](graph::OpId producer,
                                            DeviceId src, DeviceId dst,
                                            std::int64_t bytes, double ready,
                                            std::size_t oe) {
    const double* cached = RtLookup(ctx, producer, dst, bytes);
    if (cached != nullptr) return *cached;
    const int channel = cluster.link_channel(src, dst);
    const auto chi = static_cast<std::size_t>(channel);
    const double xfer_start = std::max(ready, ctx.link_free[chi]);
    const double xfer =
        cost.TransferSeconds(src, dst, bytes) * LinkScale(ctx, channel);
    const double arrival = xfer_start + xfer;
    ctx.link_free[chi] = arrival;
    RtInsert(ctx, producer, dst, bytes, arrival);
    ctx.replay_transfers.push_back(
        DeltaTransfer{producer, src, dst, bytes,
                      static_cast<std::int32_t>(oe), channel, xfer_start,
                      arrival, xfer});
    return arrival;
  };

  // ---- replay: the event loop restricted to the invalidated cone,
  // with kept producers' re-emitted transfers merged in at their cached
  // pick positions ----
  std::size_t emit_idx = 0;
  while (remaining > 0 || emit_idx < ctx.emissions.size()) {
    DeviceId best_dev = -1;
    double best_start = 0.0;
    int best_priority = -1;
    for (DeviceId d = 0; d < num_devices; ++d) {
      const auto& h = ctx.heaps[static_cast<std::size_t>(d)];
      if (h.empty()) continue;
      const ReadyOp& head = h.front();
      const double start =
          std::max(head.ready_time, ctx.device_free[static_cast<std::size_t>(d)]);
      if (best_dev < 0 || start < best_start ||
          (start == best_start && head.priority > best_priority)) {
        best_dev = d;
        best_start = start;
        best_priority = head.priority;
      }
    }
    if (emit_idx < ctx.emissions.size()) {
      const DeltaContext::Emission& em = ctx.emissions[emit_idx];
      if (best_dev < 0 ||
          PickKeyLess(em.pick_start, em.priority, em.device, best_start,
                      best_priority, best_dev)) {
        ++emit_idx;
        const graph::OpId p = em.producer;
        const double finish_p = ctx.finish[static_cast<std::size_t>(p)];
        const auto& oes = g.out_edges(p);
        for (std::size_t oe = 0; oe < oes.size(); ++oe) {
          const auto ei = static_cast<std::size_t>(oes[oe]);
          if (ctx.edge_unresolved_epoch[ei] != ctx.run_epoch) continue;
          const graph::Edge& e = g.edges()[ei];
          EAGLE_DCHECK(is_invalid(e.dst));
          const DeviceId new_w = placement.device(e.dst);
          const double arrival =
              send(p, em.device, new_w, e.bytes, finish_p, oe);
          const double rdy = raise_ready(e.dst, arrival);
          if (dec_pending(e.dst) == 0) {
            push_ready(new_w,
                       ReadyOp{rdy,
                               prio[static_cast<std::size_t>(e.dst)], e.dst});
          }
        }
        continue;
      }
    }
    if (best_dev < 0) {
      // No schedulable op and no pending emission: a closure bug. Poison
      // the cache; the caller falls back to a full run and a refresh.
      EAGLE_DCHECK(false);
      ctx.valid = false;
      return false;
    }
    auto& h = ctx.heaps[static_cast<std::size_t>(best_dev)];
    const graph::OpId u = h.front().op;
    std::pop_heap(h.begin(), h.end(), cmp);
    h.pop_back();
    --remaining;
    const auto ui = static_cast<std::size_t>(u);
    const double start = best_start;
    const double comp = cost.ComputeSeconds(g.op(u), best_dev) *
                        ComputeScale(ctx, best_dev);
    const double finish = start + comp;
    if (!(finish > start)) {
      // Zero-cost op surfaced mid-replay: the merge order is no longer
      // provable. Poison and fall back (the refresh re-detects this).
      ctx.valid = false;
      return false;
    }
    ctx.start[ui] = start;
    ctx.finish[ui] = finish;
    ctx.compute[ui] = comp;
    ctx.device_free[static_cast<std::size_t>(best_dev)] = finish;
    ctx.replay_pick_order.push_back(u);
    const auto& oes = g.out_edges(u);
    for (std::size_t oe = 0; oe < oes.size(); ++oe) {
      const graph::Edge& e = g.edges()[static_cast<std::size_t>(oes[oe])];
      EAGLE_DCHECK(is_invalid(e.dst));
      const DeviceId new_w = placement.device(e.dst);
      double arrival = finish;
      if (new_w != best_dev) {
        arrival = send(u, best_dev, new_w, e.bytes, finish, oe);
      }
      const double rdy = raise_ready(e.dst, arrival);
      if (dec_pending(e.dst) == 0) {
        push_ready(new_w,
                   ReadyOp{rdy, prio[static_cast<std::size_t>(e.dst)],
                           e.dst});
      }
    }
  }

  // ---- memory candidates (needs old devices, so before the commit) ----
  const bool track_memory = ctx.track_memory;
  if (track_memory) {
    const auto add_slot = [&ctx, num_devices](graph::OpId p, DeviceId d) {
      const std::size_t slot = Slot(p, d, num_devices);
      if (ctx.slot_dirty_epoch[slot] == ctx.run_epoch) return;
      ctx.slot_dirty_epoch[slot] = ctx.run_epoch;
      ctx.slot_candidates.push_back(static_cast<std::int64_t>(slot));
    };
    for (const graph::OpId u : invalid_list) {
      const auto ui = static_cast<std::size_t>(u);
      const DeviceId old_u = ctx.devices[ui];
      const DeviceId new_u = placement.device(u);
      add_slot(u, old_u);
      add_slot(u, new_u);
      for (const auto ei : g.in_edges(u)) {
        const graph::Edge& e = g.edges()[static_cast<std::size_t>(ei)];
        add_slot(e.src, old_u);
        add_slot(e.src, new_u);
      }
    }
    for (const graph::OpId u : ctx.moved) {
      const auto ui = static_cast<std::size_t>(u);
      const std::int64_t pb = g.op(u).param_bytes;
      if (pb != 0) {
        const auto od = static_cast<std::size_t>(ctx.devices[ui]);
        const auto nd = static_cast<std::size_t>(placement.device(u));
        ctx.param_bytes[od] -= pb;
        ctx.param_bytes[nd] += pb;
        if (ctx.dev_dirty[od] == 0) ctx.dev_dirty[od] = 1;
        if (ctx.dev_dirty[nd] == 0) ctx.dev_dirty[nd] = 1;
      }
    }
  }

  // ---- commit: advance the cache to the new schedule ----
  for (const graph::OpId u : ctx.moved) {
    ctx.devices[static_cast<std::size_t>(u)] = placement.device(u);
  }
  for (std::size_t d = 0; d < devs; ++d) {
    const auto k = static_cast<std::size_t>(ctx.kept_dev[d]);
    ctx.dev_ops[d].resize(k);
    ctx.dev_busy[d].resize(k);
  }
  for (const graph::OpId u : ctx.replay_pick_order) {
    const auto ui = static_cast<std::size_t>(u);
    const auto di = static_cast<std::size_t>(ctx.devices[ui]);
    ctx.dev_ops[di].push_back(u);
    const double busy =
        (ctx.dev_busy[di].empty() ? 0.0 : ctx.dev_busy[di].back()) +
        ctx.compute[ui];
    ctx.dev_busy[di].push_back(busy);
  }

  // Merge kept and replayed picks back into the global order.
  {
    ctx.merged_pick_order.reserve(ops);
    std::size_t ki = 0;
    std::size_t ri = 0;
    const auto& kept = ctx.pick_order;
    const auto& replayed = ctx.replay_pick_order;
    while (ki < kept.size() && is_invalid(kept[ki])) ++ki;
    while (ki < kept.size() || ri < replayed.size()) {
      bool take_kept;
      if (ki >= kept.size()) {
        take_kept = false;
      } else if (ri >= replayed.size()) {
        take_kept = true;
      } else {
        const auto a = static_cast<std::size_t>(kept[ki]);
        const auto b = static_cast<std::size_t>(replayed[ri]);
        take_kept = !PickKeyLess(ctx.start[b], prio[b], ctx.devices[b],
                                 ctx.start[a], prio[a], ctx.devices[a]);
      }
      if (take_kept) {
        ctx.merged_pick_order.push_back(kept[ki++]);
        while (ki < kept.size() && is_invalid(kept[ki])) ++ki;
      } else {
        ctx.merged_pick_order.push_back(replayed[ri++]);
      }
    }
    EAGLE_DCHECK(ctx.merged_pick_order.size() == ops);
    std::swap(ctx.pick_order, ctx.merged_pick_order);
  }

  // Merge kept and replayed transfers back into creation order; re-sum
  // the totals in that order so the floating-point accumulation matches a
  // full run exactly.
  {
    ctx.merged_transfers.reserve(ctx.transfers.size() +
                                 ctx.replay_transfers.size());
    const auto kept_transfer = [&ctx](const DeltaTransfer& t) {
      return t.xfer_start < ctx.t_ch[static_cast<std::size_t>(t.channel)];
    };
    const auto key_less = [&ctx, &prio](const DeltaTransfer& a,
                                        const DeltaTransfer& b) {
      const auto pa = static_cast<std::size_t>(a.producer);
      const auto pb = static_cast<std::size_t>(b.producer);
      if (ctx.start[pa] != ctx.start[pb]) return ctx.start[pa] < ctx.start[pb];
      if (prio[pa] != prio[pb]) return prio[pa] > prio[pb];
      if (a.src != b.src) return a.src < b.src;
      return a.ordinal < b.ordinal;
    };
    std::size_t ki = 0;
    std::size_t ri = 0;
    const auto& kept = ctx.transfers;
    const auto& replayed = ctx.replay_transfers;
    while (ki < kept.size() && !kept_transfer(kept[ki])) ++ki;
    while (ki < kept.size() || ri < replayed.size()) {
      bool take_kept;
      if (ki >= kept.size()) {
        take_kept = false;
      } else if (ri >= replayed.size()) {
        take_kept = true;
      } else {
        take_kept = !key_less(replayed[ri], kept[ki]);
      }
      if (take_kept) {
        ctx.merged_transfers.push_back(kept[ki++]);
        while (ki < kept.size() && !kept_transfer(kept[ki])) ++ki;
      } else {
        ctx.merged_transfers.push_back(replayed[ri++]);
      }
    }
    std::swap(ctx.transfers, ctx.merged_transfers);
  }
  ctx.transfer_seconds_total = 0.0;
  ctx.transfer_bytes_total = 0;
  ctx.num_transfers = static_cast<int>(ctx.transfers.size());
  for (auto& c : ctx.ch_transfers) c.clear();
  for (std::size_t i = 0; i < ctx.transfers.size(); ++i) {
    const DeltaTransfer& t = ctx.transfers[i];
    ctx.transfer_seconds_total += t.xfer_seconds;
    ctx.transfer_bytes_total += t.bytes;
    ctx.ch_transfers[static_cast<std::size_t>(t.channel)].push_back(
        static_cast<std::int32_t>(i));
  }
  RebuildCachedTransferIndex(ctx);
  ctx.step_seconds = 0.0;
  for (std::size_t i = 0; i < ops; ++i) {
    ctx.step_seconds = std::max(ctx.step_seconds, ctx.finish[i]);
  }

  // ---- memory patch: recompute only the disturbed (producer, device)
  // interval slots, re-sweep only devices whose interval set changed ----
  if (track_memory) {
    for (const std::int64_t slot_id : ctx.slot_candidates) {
      const auto slot = static_cast<std::size_t>(slot_id);
      const auto p =
          static_cast<graph::OpId>(slot / static_cast<std::size_t>(num_devices));
      const auto d =
          static_cast<DeviceId>(slot % static_cast<std::size_t>(num_devices));
      const auto pi = static_cast<std::size_t>(p);
      const auto di = static_cast<std::size_t>(d);
      bool have = false;
      std::int64_t first_bytes = 0;
      double lo = 0.0;
      double hi = 0.0;
      const auto contribute = [&have, &first_bytes, &lo,
                               &hi](double s, double e, std::int64_t b) {
        if (b <= 0) return;
        if (!have) {
          have = true;
          first_bytes = b;
          lo = s;
          hi = e;
        } else {
          lo = std::min(lo, s);
          hi = std::max(hi, e);
        }
      };
      const DeviceId dev_p = ctx.devices[pi];
      if (dev_p == d) {
        contribute(ctx.finish[pi], ctx.finish[pi], g.op(p).output_bytes());
      } else {
        ctx.seen_bytes.clear();
        for (const auto ei : g.out_edges(p)) {
          const graph::Edge& e = g.edges()[static_cast<std::size_t>(ei)];
          if (ctx.devices[static_cast<std::size_t>(e.dst)] != d) continue;
          bool seen = false;
          for (const auto& sb : ctx.seen_bytes) {
            if (sb.second == e.bytes) {
              seen = true;
              break;
            }
          }
          if (seen) continue;
          ctx.seen_bytes.emplace_back(d, e.bytes);
          const double* arr = RtLookup(ctx, p, d, e.bytes);
          EAGLE_DCHECK(arr != nullptr);
          if (arr != nullptr) contribute(*arr, *arr, e.bytes);
        }
      }
      for (const auto ei : g.out_edges(p)) {
        const graph::Edge& e = g.edges()[static_cast<std::size_t>(ei)];
        const auto wi = static_cast<std::size_t>(e.dst);
        if (ctx.devices[wi] != d) continue;
        contribute(ctx.start[wi], ctx.finish[wi],
                   dev_p == d ? g.op(p).output_bytes() : e.bytes);
      }

      const bool exists = ctx.slot_gen[slot] == ctx.generation;
      auto& ivs = ctx.intervals[di];
      if (!have && !exists) continue;
      if (have && exists) {
        DeltaInterval& cur = ivs[ctx.slot_index[slot]];
        if (cur.iv.start == lo && cur.iv.end == hi &&
            cur.iv.bytes == first_bytes) {
          continue;
        }
        cur.iv = LiveInterval{lo, hi, first_bytes};
        ctx.dev_dirty[di] = 2;
      } else if (have) {
        ctx.slot_gen[slot] = ctx.generation;
        ctx.slot_index[slot] = static_cast<std::uint32_t>(ivs.size());
        ivs.push_back(DeltaInterval{p, LiveInterval{lo, hi, first_bytes}});
        ctx.dev_dirty[di] = 2;
      } else {
        const std::uint32_t idx = ctx.slot_index[slot];
        const std::size_t last = ivs.size() - 1;
        if (idx != last) {
          ivs[idx] = ivs[last];
          ctx.slot_index[Slot(ivs[idx].producer, d, num_devices)] = idx;
        }
        ivs.pop_back();
        ctx.slot_gen[slot] = 0;
        ctx.dev_dirty[di] = 2;
      }
    }
    ctx.oom = false;
    ctx.oom_device = -1;
    for (DeviceId d = 0; d < num_devices; ++d) {
      const auto di = static_cast<std::size_t>(d);
      if (ctx.dev_dirty[di] != 0) {
        if (ctx.dev_dirty[di] == 2) {
          ctx.iv_scratch.clear();
          for (const DeltaInterval& iv : ctx.intervals[di]) {
            ctx.iv_scratch.push_back(iv.iv);
          }
          ctx.act_bytes[di] = PeakLiveBytes(ctx.iv_scratch, ctx.event_scratch);
        }
        ctx.peak_bytes[di] =
            ctx.param_bytes[di] +
            static_cast<std::int64_t>(
                static_cast<double>(ctx.act_bytes[di]) *
                in.options->memory.activation_overhead);
      }
      if (ctx.peak_bytes[di] > cluster.device(d).memory_bytes && !ctx.oom) {
        ctx.oom = true;
        ctx.oom_device = d;
      }
    }
  }

  ctx.stats.hits++;
  ctx.stats.cone_ops += static_cast<std::int64_t>(cone);
  BuildResult(ctx, record_schedule, out);
  return true;
}

std::string DiffStepResults(const StepResult& a, const StepResult& b) {
  std::ostringstream os;
  const auto fail = [&os](const char* field, double got, double want) {
    os << field << ": " << got << " vs " << want;
    return os.str();
  };
  if (a.oom != b.oom) return fail("oom", a.oom, b.oom);
  if (a.oom_device != b.oom_device) {
    return fail("oom_device", a.oom_device, b.oom_device);
  }
  if (a.step_seconds != b.step_seconds) {
    return fail("step_seconds", a.step_seconds, b.step_seconds);
  }
  if (a.device_busy_seconds != b.device_busy_seconds) {
    for (std::size_t d = 0; d < a.device_busy_seconds.size(); ++d) {
      if (d >= b.device_busy_seconds.size() ||
          a.device_busy_seconds[d] != b.device_busy_seconds[d]) {
        os << "device_busy_seconds[" << d << "]";
        return os.str();
      }
    }
    return "device_busy_seconds size";
  }
  if (a.device_peak_bytes != b.device_peak_bytes) return "device_peak_bytes";
  if (a.device_param_bytes != b.device_param_bytes) {
    return "device_param_bytes";
  }
  if (a.transfer_seconds_total != b.transfer_seconds_total) {
    return fail("transfer_seconds_total", a.transfer_seconds_total,
                b.transfer_seconds_total);
  }
  if (a.transfer_bytes_total != b.transfer_bytes_total) {
    return fail("transfer_bytes_total",
                static_cast<double>(a.transfer_bytes_total),
                static_cast<double>(b.transfer_bytes_total));
  }
  if (a.num_transfers != b.num_transfers) {
    return fail("num_transfers", a.num_transfers, b.num_transfers);
  }
  if (a.schedule.size() != b.schedule.size()) return "schedule size";
  for (std::size_t i = 0; i < a.schedule.size(); ++i) {
    const ScheduledOp& x = a.schedule[i];
    const ScheduledOp& y = b.schedule[i];
    if (x.op != y.op || x.device != y.device ||
        x.start_seconds != y.start_seconds ||
        x.end_seconds != y.end_seconds) {
      os << "schedule[" << i << "]: op " << x.op << "@" << x.device << " ["
         << x.start_seconds << ", " << x.end_seconds << "] vs op " << y.op
         << "@" << y.device << " [" << y.start_seconds << ", "
         << y.end_seconds << "]";
      return os.str();
    }
  }
  if (a.transfers.size() != b.transfers.size()) return "transfers size";
  for (std::size_t i = 0; i < a.transfers.size(); ++i) {
    const ScheduledTransfer& x = a.transfers[i];
    const ScheduledTransfer& y = b.transfers[i];
    if (x.producer != y.producer || x.src != y.src || x.dst != y.dst ||
        x.bytes != y.bytes || x.start_seconds != y.start_seconds ||
        x.end_seconds != y.end_seconds) {
      os << "transfers[" << i << "]: " << x.producer << " " << x.src << "->"
         << x.dst << " " << x.bytes << "B [" << x.start_seconds << ", "
         << x.end_seconds << "] vs " << y.producer << " " << y.src << "->"
         << y.dst << " " << y.bytes << "B [" << y.start_seconds << ", "
         << y.end_seconds << "]";
      return os.str();
    }
  }
  return "";
}

}  // namespace eagle::sim
