// Device and cluster specifications for the execution simulator.
//
// The default cluster mirrors the paper's environment (§IV-C): one machine
// with 4 NVIDIA P100 GPUs and 2 Xeon E5-2650v4 CPUs (modelled as a single
// CPU device, as TensorFlow exposes it), connected over PCIe.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/status.h"

namespace eagle::sim {

enum class DeviceKind { kCPU, kGPU };

using DeviceId = std::int32_t;

struct DeviceSpec {
  std::string name;
  DeviceKind kind = DeviceKind::kGPU;
  // Effective (not peak) compute rate for training kernels.
  double gflops = 4000.0;
  // Local memory bandwidth, used for memory-bound elementwise ops.
  double mem_bw_gbps = 500.0;
  // Per-op dispatch overhead: kernel launch on GPU, op dispatch on CPU.
  // This is what makes spreading a small model (Inception-V3) lose.
  double launch_overhead_us = 15.0;
  // Usable memory after framework reservations.
  std::int64_t memory_bytes = 0;
};

struct LinkSpec {
  double bandwidth_gbps = 12.0;  // PCIe gen3 x16 effective
  double latency_us = 10.0;
};

class ClusterSpec {
 public:
  ClusterSpec() = default;

  DeviceId AddDevice(DeviceSpec spec);
  void SetLink(DeviceId src, DeviceId dst, LinkSpec link);

  // Assigns the directed link to a contention channel: transfers on links
  // sharing a channel serialize against each other (e.g. all host<->GPU
  // links crossing one PCIe root complex). Default: every directed link
  // is its own channel.
  void SetLinkChannel(DeviceId src, DeviceId dst, int channel);
  // Dense channel index for a directed link (always valid).
  int link_channel(DeviceId src, DeviceId dst) const;
  int num_link_channels() const;

  int num_devices() const { return static_cast<int>(devices_.size()); }
  const DeviceSpec& device(DeviceId id) const;
  const LinkSpec& link(DeviceId src, DeviceId dst) const;

  // First CPU device (placement target for cpu_only ops); -1 if none.
  DeviceId FirstCpu() const;
  // All GPU device ids in insertion order.
  std::vector<DeviceId> Gpus() const;

  // Checks every device and link spec for values the cost model would turn
  // into inf/NaN step times: compute/bandwidth rates must be positive and
  // finite, overheads/latencies non-negative and finite, memory
  // non-negative. Returns kNumericOverflow naming the offending device or
  // link, or kSyntax for an empty cluster. ExecutionSimulator refuses (via
  // EAGLE_CHECK) to be constructed over a cluster that fails this.
  support::Status Validate() const;

  std::string ToString() const;

 private:
  std::vector<DeviceSpec> devices_;
  std::vector<LinkSpec> links_;     // row-major [src * n + dst]
  std::vector<int> link_channels_;  // row-major; -1 == own channel
};

struct ClusterOptions {
  int num_gpus = 4;
  // P100 16GB exists, but the paper's OOM discussion assumes "typical GPUs
  // only have 12GB to 16GB" — we model 12GB cards with ~92% usable after
  // the framework's allocator reservation.
  std::int64_t gpu_memory_bytes = static_cast<std::int64_t>(11.0 * (1LL << 30));
  double gpu_gflops = 2500.0;   // effective P100 fp32 throughput in training
  double cpu_gflops = 80.0;     // 2x E5-2650v4, effective
  double pcie_gbps = 11.0;
  double pcie_latency_us = 50.0;  // includes TF send/recv rendezvous cost
  // When true, all host<->GPU links share one contention channel (a
  // single PCIe root complex) instead of independent per-pair channels.
  bool shared_host_bus = false;
};

// 4x P100 + CPU, fully connected over PCIe (GPU<->GPU peer traffic crosses
// the same switch and is modelled slightly slower than host links).
ClusterSpec MakeDefaultCluster(const ClusterOptions& options = {});

// Cluster scaled down alongside ZooOptions::reduced graphs: memory shrinks
// with the models so memory-pressure behaviour (single-GPU OOM for the big
// models) is preserved at test scale.
ClusterSpec MakeScaledCluster(double memory_scale,
                              const ClusterOptions& options = {});

}  // namespace eagle::sim
