// Device and cluster specifications for the execution simulator.
//
// The default cluster mirrors the paper's environment (§IV-C): one machine
// with 4 NVIDIA P100 GPUs and 2 Xeon E5-2650v4 CPUs (modelled as a single
// CPU device, as TensorFlow exposes it), connected over PCIe.
//
// Beyond the paper's single box, MakeHierarchicalCluster builds arbitrary
// multi-node topologies: NVLink islands inside a node, PCIe across
// islands and to the host, InfiniBand between nodes — each tier with its
// own bandwidth/latency — plus heterogeneous per-device compute/memory
// and shared contention channels (one per PCIe root complex, one per
// NIC). Serialized cluster specs (.ec / .json) are ingested through
// sim/cluster_ingest.h.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/status.h"

namespace eagle::sim {

enum class DeviceKind { kCPU, kGPU };

using DeviceId = std::int32_t;

struct DeviceSpec {
  std::string name;
  DeviceKind kind = DeviceKind::kGPU;
  // Effective (not peak) compute rate for training kernels.
  double gflops = 4000.0;
  // Local memory bandwidth, used for memory-bound elementwise ops.
  double mem_bw_gbps = 500.0;
  // Per-op dispatch overhead: kernel launch on GPU, op dispatch on CPU.
  // This is what makes spreading a small model (Inception-V3) lose.
  double launch_overhead_us = 15.0;
  // Usable memory after framework reservations.
  std::int64_t memory_bytes = 0;
};

struct LinkSpec {
  double bandwidth_gbps = 12.0;  // PCIe gen3 x16 effective
  double latency_us = 10.0;
};

class ClusterSpec {
 public:
  ClusterSpec() = default;

  DeviceId AddDevice(DeviceSpec spec);
  void SetLink(DeviceId src, DeviceId dst, LinkSpec link);

  // Declares a default tier: any directed link never configured through
  // SetLink uses this spec. Without a declared default tier, Validate()
  // rejects clusters with unconfigured inter-device links — the silent
  // 12 GB/s PCIe fallback used to make unreachable pairs in multi-node
  // specs look like fast local links.
  void SetDefaultLink(LinkSpec link);
  bool has_default_link() const { return has_default_link_; }
  // True when SetLink was called for this directed pair.
  bool link_configured(DeviceId src, DeviceId dst) const;

  // Assigns the directed link to a contention channel: transfers on links
  // sharing a channel serialize against each other (e.g. all host<->GPU
  // links crossing one PCIe root complex, or all inter-node transfers
  // leaving one NIC). Channel ids are caller-chosen labels; links sharing
  // a label share a channel. Default: every directed link is its own
  // channel.
  void SetLinkChannel(DeviceId src, DeviceId dst, int channel);
  // Dense channel index for a directed link, always in
  // [0, num_link_channels()): caller-labelled channels map to
  // [0, num_custom_channels()) in first-use order, default per-pair
  // channels follow. Stable under AddDevice interleaved with SetLink /
  // SetLinkChannel (links sharing a label keep sharing an index).
  int link_channel(DeviceId src, DeviceId dst) const;
  int num_link_channels() const;
  int num_custom_channels() const {
    return static_cast<int>(channel_ids_.size());
  }

  int num_devices() const { return static_cast<int>(devices_.size()); }
  const DeviceSpec& device(DeviceId id) const;
  const LinkSpec& link(DeviceId src, DeviceId dst) const;

  // First CPU device (placement target for cpu_only ops); -1 if none.
  DeviceId FirstCpu() const;
  // All GPU device ids in insertion order.
  std::vector<DeviceId> Gpus() const;

  // Checks every device and link spec for values the cost model would turn
  // into inf/NaN step times: compute/bandwidth rates must be positive and
  // finite, overheads/latencies non-negative and finite, memory
  // non-negative. Returns kNumericOverflow naming the offending device or
  // link, kSyntax for an empty cluster or for a directed pair that was
  // never configured when no default tier is declared. ExecutionSimulator
  // refuses (via EAGLE_CHECK) to be constructed over a cluster that fails
  // this.
  support::Status Validate() const;

  std::string ToString() const;

 private:
  std::vector<DeviceSpec> devices_;
  std::vector<LinkSpec> links_;          // row-major [src * n + dst]
  std::vector<unsigned char> link_set_;  // row-major; SetLink called?
  // Row-major; -1 == own channel, else a dense index into channel_ids_.
  std::vector<int> link_channels_;
  // Caller-chosen channel label per dense custom-channel index, in
  // first-use order.
  std::vector<int> channel_ids_;
  LinkSpec default_link_{};
  bool has_default_link_ = false;
};

struct ClusterOptions {
  int num_gpus = 4;
  // P100 16GB exists, but the paper's OOM discussion assumes "typical GPUs
  // only have 12GB to 16GB" — we model 12GB cards with ~92% usable after
  // the framework's allocator reservation.
  std::int64_t gpu_memory_bytes = static_cast<std::int64_t>(11.0 * (1LL << 30));
  double gpu_gflops = 2500.0;   // effective P100 fp32 throughput in training
  double cpu_gflops = 80.0;     // 2x E5-2650v4, effective
  double pcie_gbps = 11.0;
  double pcie_latency_us = 50.0;  // includes TF send/recv rendezvous cost
  // When true, all host<->GPU links share one contention channel (a
  // single PCIe root complex) instead of independent per-pair channels.
  bool shared_host_bus = false;
};

// 4x P100 + CPU, fully connected over PCIe (GPU<->GPU peer traffic crosses
// the same switch and is modelled slightly slower than host links).
ClusterSpec MakeDefaultCluster(const ClusterOptions& options = {});

// Cluster scaled down alongside ZooOptions::reduced graphs: memory shrinks
// with the models so memory-pressure behaviour (single-GPU OOM for the big
// models) is preserved at test scale. A zero/negative or non-finite scale
// is a kNumericOverflow error, not a later simulator abort; the assembled
// cluster is additionally run through ClusterSpec::Validate().
support::StatusOr<ClusterSpec> MakeScaledCluster(
    double memory_scale, const ClusterOptions& options = {});

// A heterogeneous, hierarchical multi-node cluster. Interconnect tiers,
// fastest to slowest:
//   NVLink — all-to-all inside an island of `island_size` GPUs; every
//            NVLink link is its own channel (point-to-point lanes);
//   PCIe   — host<->GPU and cross-island GPU<->GPU inside one node; all
//            PCIe traffic of a node shares that node's root-complex
//            channel when `shared_pcie_root`;
//   IB     — every cross-node pair; all transfers *leaving* a node share
//            that node's NIC egress channel when `shared_nic`.
// Per-device heterogeneity: `per_gpu_gflops` / `per_gpu_memory_bytes`
// (cycled over each node's GPUs; empty = the homogeneous gpu_* values).
struct HierarchicalClusterOptions {
  int num_nodes = 2;
  int gpus_per_node = 4;
  // GPUs [k*island_size, (k+1)*island_size) within a node form one
  // NVLink island; island_size >= gpus_per_node means one island per
  // node (a DGX-style fully NVLink-connected box).
  int island_size = 4;

  double gpu_gflops = 2500.0;
  double gpu_mem_bw_gbps = 550.0;
  double gpu_launch_overhead_us = 50.0;
  std::int64_t gpu_memory_bytes = static_cast<std::int64_t>(11.0 * (1LL << 30));
  // Heterogeneous per-GPU overrides, cycled per node. Empty = homogeneous.
  std::vector<double> per_gpu_gflops;
  std::vector<std::int64_t> per_gpu_memory_bytes;

  double cpu_gflops = 80.0;
  std::int64_t cpu_memory_bytes = 120LL << 30;

  double nvlink_gbps = 44.0;  // effective per-direction NVLink gen2
  double nvlink_latency_us = 6.0;
  double pcie_gbps = 11.0;
  double pcie_latency_us = 50.0;
  double ib_gbps = 9.0;  // effective 100 Gb/s IB after transport overhead
  double ib_latency_us = 130.0;  // includes gRPC/rendezvous cost

  bool shared_pcie_root = true;
  bool shared_nic = true;
};

// Device order is node-major, CPU first within each node:
//   /node0/cpu:0, /node0/gpu:0 .. /node0/gpu:G-1, /node1/cpu:0, ...
// The returned cluster always passes Validate() (every pair configured).
ClusterSpec MakeHierarchicalCluster(const HierarchicalClusterOptions& options = {});

// Canonical topologies used by benches, graph_fuzz --mode=delta and the
// --cluster=<name> CLI shorthand (sim/cluster_ingest.h ResolveCluster):
//   2node8  — 2 nodes × 4 NVLink-island GPUs over shared-NIC IB;
//   mixed   — one box with 2 fast (P100-class) + 2 slow (K80-class,
//             more memory) GPUs behind one PCIe root.
ClusterSpec MakeTwoNodeNvlinkIbCluster();
ClusterSpec MakeMixedSpeedCluster();

}  // namespace eagle::sim
