#include "sim/memory_model.h"

#include <algorithm>

namespace eagle::sim {

std::int64_t PeakLiveBytes(const std::vector<LiveInterval>& intervals,
                           std::vector<MemEvent>& scratch) {
  scratch.clear();
  scratch.reserve(intervals.size() * 2);
  for (const auto& iv : intervals) {
    if (iv.bytes <= 0 || iv.end <= iv.start) continue;
    scratch.push_back({iv.start, iv.bytes});
    scratch.push_back({iv.end, -iv.bytes});
  }
  std::sort(scratch.begin(), scratch.end(),
            [](const MemEvent& a, const MemEvent& b) {
              // Free before allocate at identical timestamps (conservative
              // would be the reverse; frameworks reuse buffers within a
              // step, so free-first matches observed footprints better).
              return a.time < b.time ||
                     (a.time == b.time && a.delta < b.delta);
            });
  std::int64_t live = 0;
  std::int64_t peak = 0;
  for (const auto& e : scratch) {
    live += e.delta;
    peak = std::max(peak, live);
  }
  return peak;
}

std::int64_t PeakLiveBytes(std::vector<LiveInterval> intervals) {
  std::vector<MemEvent> scratch;
  return PeakLiveBytes(intervals, scratch);
}

}  // namespace eagle::sim
