#include "sim/memory_model.h"

#include <algorithm>

namespace eagle::sim {

std::int64_t PeakLiveBytes(std::vector<LiveInterval> intervals) {
  struct Event {
    double time;
    std::int64_t delta;
  };
  std::vector<Event> events;
  events.reserve(intervals.size() * 2);
  for (const auto& iv : intervals) {
    if (iv.bytes <= 0 || iv.end <= iv.start) continue;
    events.push_back({iv.start, iv.bytes});
    events.push_back({iv.end, -iv.bytes});
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    // Free before allocate at identical timestamps (conservative would be
    // the reverse; frameworks reuse buffers within a step, so free-first
    // matches observed footprints better).
    return a.time < b.time || (a.time == b.time && a.delta < b.delta);
  });
  std::int64_t live = 0;
  std::int64_t peak = 0;
  for (const auto& e : events) {
    live += e.delta;
    peak = std::max(peak, live);
  }
  return peak;
}

}  // namespace eagle::sim
