// Liveness-based device memory accounting.
//
// Each tensor occupies its producer's device from production until its
// last local consumer finishes, and every *remote* consumer's device from
// transfer arrival until that device's last consumer of it finishes — so a
// training graph (whose backward ops consume forward activations late)
// naturally holds all forward activations at the backward frontier, which
// is exactly what makes GNMT-batch-256 / BERT-Base blow past a 12 GB card.
#pragma once

#include <cstdint>
#include <vector>

namespace eagle::sim {

struct LiveInterval {
  double start = 0.0;
  double end = 0.0;
  std::int64_t bytes = 0;
};

// One endpoint of a live interval in the sweep-line scan.
struct MemEvent {
  double time = 0.0;
  std::int64_t delta = 0;
};

// Peak of the sum of overlapping intervals (classic sweep line).
std::int64_t PeakLiveBytes(std::vector<LiveInterval> intervals);

// Allocation-free variant for the simulator hot path: reads `intervals`
// without consuming it and sweeps inside the caller-provided scratch
// buffer (cleared on entry, capacity retained), so a warmed-up
// SimWorkspace re-runs with zero heap traffic.
std::int64_t PeakLiveBytes(const std::vector<LiveInterval>& intervals,
                           std::vector<MemEvent>& scratch);

struct MemoryModelOptions {
  // Allocator fragmentation + cuDNN workspace multiplier on activations.
  double activation_overhead = 1.25;
};

}  // namespace eagle::sim
