#include "sim/fault.h"

#include <cstdlib>
#include <sstream>

#include "support/check.h"

namespace eagle::sim {

namespace {

double ParseRate(const std::string& key, const std::string& value) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  EAGLE_CHECK_MSG(end != nullptr && *end == '\0',
                  "bad fault value '" << value << "' for " << key);
  EAGLE_CHECK_MSG(v >= 0.0, "fault " << key << " must be non-negative");
  return v;
}

}  // namespace

std::string FaultProfile::ToString() const {
  std::ostringstream os;
  os << "crash=" << transient_failure_rate << " down=" << device_down_rate
     << " straggler=" << straggler_rate << "x" << straggler_slowdown
     << " link=" << degraded_link_rate << "x" << degraded_link_factor
     << " seed=" << seed;
  return os.str();
}

FaultProfile FaultProfileFromString(const std::string& text) {
  FaultProfile profile;
  if (text.empty()) return profile;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t comma = text.find(',', pos);
    const std::string item = text.substr(
        pos, comma == std::string::npos ? comma : comma - pos);
    if (!item.empty()) {
      const std::size_t eq = item.find('=');
      if (eq == std::string::npos) {
        // Bare rate: a uniform profile at that severity.
        const double rate = ParseRate("rate", item);
        profile.transient_failure_rate = rate;
        profile.device_down_rate = rate / 4.0;
        profile.straggler_rate = rate;
        profile.degraded_link_rate = rate;
      } else {
        const std::string key = item.substr(0, eq);
        const std::string value = item.substr(eq + 1);
        if (key == "crash") {
          profile.transient_failure_rate = ParseRate(key, value);
        } else if (key == "down") {
          profile.device_down_rate = ParseRate(key, value);
        } else if (key == "straggler") {
          profile.straggler_rate = ParseRate(key, value);
        } else if (key == "slowdown") {
          profile.straggler_slowdown = ParseRate(key, value);
        } else if (key == "link") {
          profile.degraded_link_rate = ParseRate(key, value);
        } else if (key == "linkfactor") {
          profile.degraded_link_factor = ParseRate(key, value);
        } else if (key == "seed") {
          profile.seed = static_cast<std::uint64_t>(ParseRate(key, value));
        } else {
          EAGLE_CHECK_MSG(false, "unknown fault key '" << key << "'");
        }
      }
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return profile;
}

bool FaultDraw::HasPerfFaults() const {
  for (double s : device_compute_scale) {
    if (s != 1.0) return true;
  }
  for (double s : link_scale) {
    if (s != 1.0) return true;
  }
  return false;
}

bool FaultDraw::HitsDownDevice(const Placement& placement) const {
  if (device_down.empty()) return false;
  for (DeviceId d : placement.devices()) {
    if (device_down[static_cast<std::size_t>(d)]) return true;
  }
  return false;
}

std::string FaultDraw::ToString(const ClusterSpec& cluster) const {
  std::ostringstream os;
  if (session_crash) os << "session-crash ";
  for (DeviceId d = 0; d < cluster.num_devices(); ++d) {
    if (!device_down.empty() && device_down[static_cast<std::size_t>(d)]) {
      os << cluster.device(d).name << "=DOWN ";
    } else if (!device_compute_scale.empty() &&
               device_compute_scale[static_cast<std::size_t>(d)] != 1.0) {
      os << cluster.device(d).name << "=x"
         << device_compute_scale[static_cast<std::size_t>(d)] << " ";
    }
  }
  int degraded_links = 0;
  for (double s : link_scale) {
    if (s != 1.0) ++degraded_links;
  }
  if (degraded_links > 0) os << degraded_links << " degraded link(s) ";
  std::string s = os.str();
  if (s.empty()) return "healthy";
  if (s.back() == ' ') s.pop_back();
  return s;
}

FaultInjector::FaultInjector(FaultProfile profile, const ClusterSpec& cluster)
    : profile_(profile), num_link_channels_(cluster.num_link_channels()) {
  EAGLE_CHECK_MSG(profile_.transient_failure_rate < 1.0 ||
                      profile_.device_down_rate < 1.0,
                  "fault profile fails every attempt unconditionally");
  EAGLE_CHECK(profile_.straggler_slowdown >= 1.0);
  EAGLE_CHECK(profile_.degraded_link_factor >= 1.0);
  device_is_gpu_.reserve(static_cast<std::size_t>(cluster.num_devices()));
  for (DeviceId d = 0; d < cluster.num_devices(); ++d) {
    device_is_gpu_.push_back(cluster.device(d).kind == DeviceKind::kGPU);
  }
}

FaultDraw FaultInjector::Draw(support::Rng& rng) const {
  FaultDraw draw;
  const std::size_t num_devices = device_is_gpu_.size();
  draw.device_down.assign(num_devices, false);
  draw.device_compute_scale.assign(num_devices, 1.0);
  draw.link_scale.assign(static_cast<std::size_t>(num_link_channels_), 1.0);
  if (!profile_.enabled()) return draw;

  // Fixed draw order (crash, per-device, per-link) keeps the stream
  // deterministic across profiles with the same enabled fault classes.
  draw.session_crash = profile_.transient_failure_rate > 0.0 &&
                       rng.NextDouble() < profile_.transient_failure_rate;
  for (std::size_t d = 0; d < num_devices; ++d) {
    if (!device_is_gpu_[d]) continue;
    if (profile_.device_down_rate > 0.0 &&
        rng.NextDouble() < profile_.device_down_rate) {
      draw.device_down[d] = true;
    }
    if (profile_.straggler_rate > 0.0 &&
        rng.NextDouble() < profile_.straggler_rate) {
      draw.device_compute_scale[d] = profile_.straggler_slowdown;
    }
  }
  if (profile_.degraded_link_rate > 0.0) {
    for (auto& s : draw.link_scale) {
      if (rng.NextDouble() < profile_.degraded_link_rate) {
        s = profile_.degraded_link_factor;
      }
    }
  }
  return draw;
}

}  // namespace eagle::sim
