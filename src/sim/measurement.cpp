#include "sim/measurement.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/check.h"

namespace eagle::sim {

double NoiseFactor(double noise_stddev, support::Rng& rng) {
  return std::clamp(1.0 + noise_stddev * rng.NextGaussian(), 0.5, 2.0);
}

std::string EvalResult::ToString() const {
  std::ostringstream os;
  if (failed) {
    os << "FAILED (" << attempts << " attempts)";
  } else if (!valid) {
    os << "INVALID (OOM)";
  } else {
    os << per_step_seconds << " s/step";
  }
  os << " [cost " << measurement_cost_seconds << " s]";
  return os.str();
}

MeasurementSession::MeasurementSession(const graph::OpGraph& graph,
                                       const ClusterSpec& cluster,
                                       MeasurementOptions options,
                                       SimulatorOptions sim_options)
    : simulator_(graph, cluster, sim_options), options_(options) {
  EAGLE_CHECK(options_.total_steps > options_.warmup_steps);
  EAGLE_CHECK(options_.warmup_steps >= 0);
  EAGLE_CHECK(options_.noise_stddev >= 0.0);
}

EvalResult MeasurementSession::Measure(const Placement& placement,
                                       const FaultDraw* faults,
                                       support::Rng* rng) const {
  EvalResult result;
  const StepResult step = simulator_.Run(placement, faults);
  result.step = step;

  if (step.oom) {
    // An invalid placement still costs the session setup before the
    // framework aborts with the OOM error.
    result.valid = false;
    result.measurement_cost_seconds = options_.session_overhead_seconds;
    return result;
  }

  result.valid = true;
  result.true_per_step_seconds = step.step_seconds;

  // Warm-up: the first step additionally places every parameter tensor.
  const double warmup_extra =
      simulator_.ParamTransferSeconds(placement, faults);
  const int measured = options_.total_steps - options_.warmup_steps;

  double sum = 0.0;
  for (int i = 0; i < measured; ++i) {
    double s = step.step_seconds;
    if (rng != nullptr && options_.noise_stddev > 0.0) {
      s *= NoiseFactor(options_.noise_stddev, *rng);
    }
    sum += s;
  }
  result.per_step_seconds = sum / measured;
  result.measurement_cost_seconds =
      options_.session_overhead_seconds + warmup_extra +
      options_.total_steps * step.step_seconds;
  return result;
}

EvalResult MeasurementSession::Evaluate(const Placement& placement,
                                        support::Rng* rng) const {
  return Measure(placement, nullptr, rng);
}

EvalResult MeasurementSession::EvaluateWithFaults(const Placement& placement,
                                                  const FaultDraw& faults,
                                                  support::Rng* rng) const {
  if (faults.session_crash || faults.HitsDownDevice(placement)) {
    // The session dies during setup / on first contact with the dead
    // device; the attempt still consumed the setup time.
    EvalResult result;
    result.failed = true;
    result.measurement_cost_seconds = options_.session_overhead_seconds;
    return result;
  }
  EvalResult result = Measure(placement, &faults, rng);
  // The degraded machine's number is what the agent observes; the healthy
  // time is the caller's to fill from a fault-free evaluation.
  result.true_per_step_seconds = 0.0;
  return result;
}

}  // namespace eagle::sim
