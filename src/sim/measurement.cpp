#include "sim/measurement.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/check.h"

namespace eagle::sim {

std::string EvalResult::ToString() const {
  std::ostringstream os;
  if (!valid) {
    os << "INVALID (OOM)";
  } else {
    os << per_step_seconds << " s/step";
  }
  os << " [cost " << measurement_cost_seconds << " s]";
  return os.str();
}

MeasurementSession::MeasurementSession(const graph::OpGraph& graph,
                                       const ClusterSpec& cluster,
                                       MeasurementOptions options,
                                       SimulatorOptions sim_options)
    : simulator_(graph, cluster, sim_options), options_(options) {
  EAGLE_CHECK(options_.total_steps > options_.warmup_steps);
  EAGLE_CHECK(options_.warmup_steps >= 0);
}

EvalResult MeasurementSession::Evaluate(const Placement& placement,
                                        support::Rng* rng) const {
  EvalResult result;
  const StepResult step = simulator_.Run(placement);
  result.step = step;

  if (step.oom) {
    // An invalid placement still costs the session setup before the
    // framework aborts with the OOM error.
    result.valid = false;
    result.measurement_cost_seconds = options_.session_overhead_seconds;
    return result;
  }

  result.valid = true;
  result.true_per_step_seconds = step.step_seconds;

  // Warm-up: the first step additionally places every parameter tensor.
  const double warmup_extra = simulator_.ParamTransferSeconds(placement);
  const int measured = options_.total_steps - options_.warmup_steps;

  double sum = 0.0;
  for (int i = 0; i < measured; ++i) {
    double s = step.step_seconds;
    if (rng != nullptr && options_.noise_stddev > 0.0) {
      s *= std::max(0.5, 1.0 + options_.noise_stddev * rng->NextGaussian());
    }
    sum += s;
  }
  result.per_step_seconds = sum / measured;
  result.measurement_cost_seconds =
      options_.session_overhead_seconds + warmup_extra +
      options_.total_steps * step.step_seconds;
  return result;
}

}  // namespace eagle::sim
