#include "sim/cluster_ingest.h"

#include <cmath>
#include <cstdint>
#include <fstream>
#include <istream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "graph/parse_num.h"
#include "support/json.h"

namespace eagle::sim {

using support::ErrorCode;
using support::Status;
using support::StatusOr;

namespace {

// A whitespace-delimited token and the 1-based column it starts at.
struct Tok {
  std::string_view text;
  int col = 0;
};

void TokenizeLine(const std::string& line, std::vector<Tok>* out) {
  out->clear();
  const std::string_view sv(line);
  std::size_t i = 0;
  while (i < sv.size()) {
    if (sv[i] == ' ' || sv[i] == '\t') {
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j < sv.size() && sv[j] != ' ' && sv[j] != '\t') ++j;
    out->push_back(Tok{sv.substr(i, j - i), static_cast<int>(i) + 1});
    i = j;
  }
}

// Classifies a failed numeric conversion: a token that *tried* to be a
// number is an overflow, anything else is a syntax error.
ErrorCode NumericFailCode(std::string_view token) {
  return graph::LooksNumeric(token) ? ErrorCode::kNumericOverflow
                                    : ErrorCode::kSyntax;
}

// Exact double→int64 conversion for JSON quantities; false on
// non-finite, fractional, or out-of-range values (a bare static_cast
// would be undefined behaviour on those).
bool JsonToInt64(double v, std::int64_t* out) {
  if (!std::isfinite(v) || std::floor(v) != v) return false;
  if (v < -9223372036854775808.0 || v >= 9223372036854775808.0) return false;
  *out = static_cast<std::int64_t>(v);
  return true;
}

std::string Quote(std::string_view s) { return "'" + std::string(s) + "'"; }

// Shared parser state: name→id resolution, string channel labels mapped
// to dense integer labels in first-use order, duplicate-link detection.
struct Builder {
  ClusterSpec cluster;
  std::map<std::string, DeviceId, std::less<>> device_ids;
  std::map<std::string, int, std::less<>> channel_labels;
  std::set<std::pair<DeviceId, DeviceId>> link_pairs;

  int ChannelLabel(std::string_view name) {
    const auto it = channel_labels.find(name);
    if (it != channel_labels.end()) return it->second;
    const int label = static_cast<int>(channel_labels.size());
    channel_labels.emplace(std::string(name), label);
    return label;
  }
};

// Caps + duplicate-name guard applied before a device is admitted.
Status CheckAddDevice(Builder* b, DeviceSpec device,
                      const ClusterLimits& limits) {
  if (b->device_ids.count(device.name) != 0) {
    return Status::Error(ErrorCode::kDuplicateOp,
                         "device " + Quote(device.name) +
                             " already declared");
  }
  if (b->cluster.num_devices() >= limits.max_devices) {
    return Status::Error(ErrorCode::kResourceLimit,
                         "cluster exceeds the " +
                             std::to_string(limits.max_devices) +
                             "-device limit");
  }
  std::string name = device.name;
  const DeviceId id = b->cluster.AddDevice(std::move(device));
  b->device_ids.emplace(std::move(name), id);
  return Status::Ok();
}

// Shared by both parsers once endpoints resolve to valid ids; handles
// the bidir expansion so duplicate detection sees both directions.
Status CheckAddLink(Builder* b, DeviceId src, DeviceId dst, LinkSpec link,
                    int channel_label, bool bidir) {
  const auto& cluster = b->cluster;
  if (src == dst) {
    return Status::Error(ErrorCode::kCycle, "self link on device " +
                                                Quote(cluster.device(src).name));
  }
  const int directions = bidir ? 2 : 1;
  for (int k = 0; k < directions; ++k) {
    const DeviceId s = k == 0 ? src : dst;
    const DeviceId d = k == 0 ? dst : src;
    if (!b->link_pairs.insert({s, d}).second) {
      return Status::Error(ErrorCode::kDuplicateEdge,
                           "duplicate link " +
                               Quote(cluster.device(s).name) + " -> " +
                               Quote(cluster.device(d).name));
    }
    b->cluster.SetLink(s, d, link);
    if (channel_label >= 0) b->cluster.SetLinkChannel(s, d, channel_label);
  }
  return Status::Ok();
}

Status FinishValidate(const ClusterSpec& cluster,
                      const ClusterIngestOptions& opts) {
  if (!opts.validate) return Status::Ok();
  Status status = cluster.Validate();
  if (!status.ok()) return status.At(opts.source_name);
  return Status::Ok();
}

StatusOr<ClusterSpec> ParseTextImpl(std::istream& in,
                                    const ClusterIngestOptions& opts) {
  Builder b;
  const std::string& src_name = opts.source_name;

  std::string line;
  std::vector<Tok> toks;
  int lineno = 0;
  bool saw_default_link = false;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    TokenizeLine(line, &toks);
    if (toks.empty() || toks[0].text[0] == '#') continue;

    if (toks[0].text == "device") {
      if (toks.size() < 3) {
        return Status::Error(
                   ErrorCode::kSyntax,
                   "device line needs: device <name> <cpu|gpu> [attrs]")
            .At(src_name, lineno, toks[0].col);
      }
      DeviceSpec device;
      device.name = std::string(toks[1].text);
      if (toks[2].text == "cpu") {
        device.kind = DeviceKind::kCPU;
      } else if (toks[2].text == "gpu") {
        device.kind = DeviceKind::kGPU;
      } else {
        return Status::Error(ErrorCode::kSyntax,
                             "device kind must be 'cpu' or 'gpu', got " +
                                 Quote(toks[2].text))
            .At(src_name, lineno, toks[2].col);
      }
      for (std::size_t t = 3; t < toks.size(); ++t) {
        const std::string_view attr = toks[t].text;
        const int col = toks[t].col;
        if (attr.rfind("gflops=", 0) == 0) {
          const std::string_view val = attr.substr(7);
          double v = 0.0;
          if (!graph::ParseDouble(val, &v)) {
            return Status::Error(NumericFailCode(val),
                                 "bad gflops value " + Quote(val))
                .At(src_name, lineno, col + 7);
          }
          if (!(v > 0.0)) {
            return Status::Error(ErrorCode::kNumericOverflow,
                                 "gflops must be positive, got " + Quote(val))
                .At(src_name, lineno, col + 7);
          }
          device.gflops = v;
        } else if (attr.rfind("mem_bw=", 0) == 0) {
          const std::string_view val = attr.substr(7);
          double v = 0.0;
          if (!graph::ParseDouble(val, &v)) {
            return Status::Error(NumericFailCode(val),
                                 "bad mem_bw value " + Quote(val))
                .At(src_name, lineno, col + 7);
          }
          if (!(v > 0.0)) {
            return Status::Error(ErrorCode::kNumericOverflow,
                                 "mem_bw must be positive, got " + Quote(val))
                .At(src_name, lineno, col + 7);
          }
          device.mem_bw_gbps = v;
        } else if (attr.rfind("overhead=", 0) == 0) {
          const std::string_view val = attr.substr(9);
          double v = 0.0;
          if (!graph::ParseDouble(val, &v)) {
            return Status::Error(NumericFailCode(val),
                                 "bad overhead value " + Quote(val))
                .At(src_name, lineno, col + 9);
          }
          if (v < 0.0) {
            return Status::Error(ErrorCode::kNumericOverflow,
                                 "negative overhead value " + Quote(val))
                .At(src_name, lineno, col + 9);
          }
          device.launch_overhead_us = v;
        } else if (attr.rfind("mem=", 0) == 0) {
          const std::string_view val = attr.substr(4);
          std::int64_t v = 0;
          if (!graph::ParseInt64(val, &v)) {
            return Status::Error(NumericFailCode(val),
                                 "bad mem value " + Quote(val))
                .At(src_name, lineno, col + 4);
          }
          if (v < 0) {
            return Status::Error(ErrorCode::kNumericOverflow,
                                 "negative mem value " + Quote(val))
                .At(src_name, lineno, col + 4);
          }
          device.memory_bytes = v;
        } else {
          return Status::Error(ErrorCode::kSyntax,
                               "unknown device attribute " + Quote(attr))
              .At(src_name, lineno, col);
        }
      }
      Status status = CheckAddDevice(&b, std::move(device), opts.limits);
      if (!status.ok()) return status.At(src_name, lineno, toks[1].col);
    } else if (toks[0].text == "default_link") {
      if (saw_default_link) {
        return Status::Error(ErrorCode::kSyntax,
                             "duplicate default_link directive")
            .At(src_name, lineno, toks[0].col);
      }
      LinkSpec link;
      for (std::size_t t = 1; t < toks.size(); ++t) {
        const std::string_view attr = toks[t].text;
        const int col = toks[t].col;
        if (attr.rfind("bw=", 0) == 0) {
          const std::string_view val = attr.substr(3);
          double v = 0.0;
          if (!graph::ParseDouble(val, &v)) {
            return Status::Error(NumericFailCode(val),
                                 "bad bw value " + Quote(val))
                .At(src_name, lineno, col + 3);
          }
          if (!(v > 0.0)) {
            return Status::Error(ErrorCode::kNumericOverflow,
                                 "bw must be positive, got " + Quote(val))
                .At(src_name, lineno, col + 3);
          }
          link.bandwidth_gbps = v;
        } else if (attr.rfind("lat=", 0) == 0) {
          const std::string_view val = attr.substr(4);
          double v = 0.0;
          if (!graph::ParseDouble(val, &v)) {
            return Status::Error(NumericFailCode(val),
                                 "bad lat value " + Quote(val))
                .At(src_name, lineno, col + 4);
          }
          if (v < 0.0) {
            return Status::Error(ErrorCode::kNumericOverflow,
                                 "negative lat value " + Quote(val))
                .At(src_name, lineno, col + 4);
          }
          link.latency_us = v;
        } else {
          return Status::Error(ErrorCode::kSyntax,
                               "unknown default_link attribute " +
                                   Quote(attr))
              .At(src_name, lineno, col);
        }
      }
      b.cluster.SetDefaultLink(link);
      saw_default_link = true;
    } else if (toks[0].text == "link") {
      if (toks.size() < 3) {
        return Status::Error(
                   ErrorCode::kSyntax,
                   "link line needs: link <src> <dst> [bw=] [lat=] "
                   "[chan=] [bidir]")
            .At(src_name, lineno, toks[0].col);
      }
      const auto sit = b.device_ids.find(toks[1].text);
      if (sit == b.device_ids.end()) {
        return Status::Error(ErrorCode::kDanglingRef,
                             "unknown device " + Quote(toks[1].text))
            .At(src_name, lineno, toks[1].col);
      }
      const auto dit = b.device_ids.find(toks[2].text);
      if (dit == b.device_ids.end()) {
        return Status::Error(ErrorCode::kDanglingRef,
                             "unknown device " + Quote(toks[2].text))
            .At(src_name, lineno, toks[2].col);
      }
      LinkSpec link;
      int channel_label = -1;
      bool bidir = false;
      for (std::size_t t = 3; t < toks.size(); ++t) {
        const std::string_view attr = toks[t].text;
        const int col = toks[t].col;
        if (attr.rfind("bw=", 0) == 0) {
          const std::string_view val = attr.substr(3);
          double v = 0.0;
          if (!graph::ParseDouble(val, &v)) {
            return Status::Error(NumericFailCode(val),
                                 "bad bw value " + Quote(val))
                .At(src_name, lineno, col + 3);
          }
          if (!(v > 0.0)) {
            return Status::Error(ErrorCode::kNumericOverflow,
                                 "bw must be positive, got " + Quote(val))
                .At(src_name, lineno, col + 3);
          }
          link.bandwidth_gbps = v;
        } else if (attr.rfind("lat=", 0) == 0) {
          const std::string_view val = attr.substr(4);
          double v = 0.0;
          if (!graph::ParseDouble(val, &v)) {
            return Status::Error(NumericFailCode(val),
                                 "bad lat value " + Quote(val))
                .At(src_name, lineno, col + 4);
          }
          if (v < 0.0) {
            return Status::Error(ErrorCode::kNumericOverflow,
                                 "negative lat value " + Quote(val))
                .At(src_name, lineno, col + 4);
          }
          link.latency_us = v;
        } else if (attr.rfind("chan=", 0) == 0) {
          const std::string_view val = attr.substr(5);
          if (val.empty()) {
            return Status::Error(ErrorCode::kSyntax,
                                 "empty channel label")
                .At(src_name, lineno, col + 5);
          }
          channel_label = b.ChannelLabel(val);
        } else if (attr == "bidir") {
          bidir = true;
        } else {
          return Status::Error(ErrorCode::kSyntax,
                               "unknown link attribute " + Quote(attr))
              .At(src_name, lineno, col);
        }
      }
      Status status = CheckAddLink(&b, sit->second, dit->second, link,
                                   channel_label, bidir);
      if (!status.ok()) return status.At(src_name, lineno, toks[1].col);
    } else {
      return Status::Error(ErrorCode::kSyntax,
                           "unknown directive " + Quote(toks[0].text))
          .At(src_name, lineno, toks[0].col);
    }
  }
  if (in.bad()) {
    return Status::Error(ErrorCode::kIo, "read error").At(src_name, lineno);
  }

  Status status = FinishValidate(b.cluster, opts);
  if (!status.ok()) return status;
  return std::move(b.cluster);
}

// 1-based line:column of a byte offset, for JSON syntax diagnostics.
void LineColAt(const std::string& text, std::size_t offset, int* line,
               int* col) {
  *line = 1;
  *col = 1;
  for (std::size_t i = 0; i < offset && i < text.size(); ++i) {
    if (text[i] == '\n') {
      ++*line;
      *col = 1;
    } else {
      ++*col;
    }
  }
}

// A positive finite rate field ("gflops", "bandwidth_gbps", ...);
// false leaves *dest untouched and the caller reports the error.
bool JsonRate(const support::json::Value* v, double* dest) {
  if (v == nullptr) return true;
  if (!v->is_number() || !std::isfinite(v->number()) || v->number() <= 0.0) {
    return false;
  }
  *dest = v->number();
  return true;
}

// A non-negative finite cost field ("launch_overhead_us", "latency_us").
bool JsonCost(const support::json::Value* v, double* dest) {
  if (v == nullptr) return true;
  if (!v->is_number() || !std::isfinite(v->number()) || v->number() < 0.0) {
    return false;
  }
  *dest = v->number();
  return true;
}

StatusOr<ClusterSpec> FromJsonImpl(const std::string& text,
                                   const ClusterIngestOptions& opts) {
  namespace json = support::json;
  const std::string& src_name = opts.source_name;

  std::string parse_error;
  std::size_t error_offset = 0;
  const json::Value root =
      json::Value::Parse(text, &parse_error, &error_offset);
  if (!parse_error.empty()) {
    int line = 0, col = 0;
    LineColAt(text, error_offset, &line, &col);
    return Status::Error(ErrorCode::kSyntax, "JSON " + parse_error)
        .At(src_name, line, col);
  }
  if (!root.is_object()) {
    return Status::Error(ErrorCode::kSyntax,
                         "top-level JSON value must be an object")
        .At(src_name, 1, 1);
  }
  const json::Value* jdevices = root.Find("devices");
  if (jdevices == nullptr || !jdevices->is_array()) {
    return Status::Error(ErrorCode::kSyntax,
                         "missing or non-array \"devices\" field")
        .At(src_name);
  }
  const json::Value* jlinks = root.Find("links");
  if (jlinks == nullptr || !jlinks->is_array()) {
    return Status::Error(ErrorCode::kSyntax,
                         "missing or non-array \"links\" field")
        .At(src_name);
  }

  Builder b;

  for (std::size_t i = 0; i < jdevices->items().size(); ++i) {
    const json::Value& jdev = jdevices->items()[i];
    const std::string ctx = "devices[" + std::to_string(i) + "]";
    if (!jdev.is_object()) {
      return Status::Error(ErrorCode::kSyntax, ctx + " is not an object")
          .At(src_name);
    }
    DeviceSpec device;

    const json::Value* name = jdev.Find("name");
    if (name == nullptr || !name->is_string() ||
        name->string_value().empty()) {
      return Status::Error(ErrorCode::kSyntax,
                           ctx + " has a missing or empty \"name\"")
          .At(src_name);
    }
    device.name = name->string_value();

    const json::Value* kind = jdev.Find("kind");
    if (kind == nullptr || !kind->is_string()) {
      return Status::Error(ErrorCode::kSyntax, ctx + " has a missing \"kind\"")
          .At(src_name);
    }
    if (kind->string_value() == "cpu") {
      device.kind = DeviceKind::kCPU;
    } else if (kind->string_value() == "gpu") {
      device.kind = DeviceKind::kGPU;
    } else {
      return Status::Error(ErrorCode::kSyntax,
                           ctx + ": \"kind\" must be \"cpu\" or \"gpu\", got " +
                               Quote(kind->string_value()))
          .At(src_name);
    }

    if (!JsonRate(jdev.Find("gflops"), &device.gflops)) {
      return Status::Error(ErrorCode::kNumericOverflow,
                           ctx + " has a bad \"gflops\" value")
          .At(src_name);
    }
    if (!JsonRate(jdev.Find("mem_bw_gbps"), &device.mem_bw_gbps)) {
      return Status::Error(ErrorCode::kNumericOverflow,
                           ctx + " has a bad \"mem_bw_gbps\" value")
          .At(src_name);
    }
    if (!JsonCost(jdev.Find("launch_overhead_us"),
                  &device.launch_overhead_us)) {
      return Status::Error(ErrorCode::kNumericOverflow,
                           ctx + " has a bad \"launch_overhead_us\" value")
          .At(src_name);
    }
    const json::Value* mem = jdev.Find("memory_bytes");
    if (mem != nullptr) {
      std::int64_t v = 0;
      if (!mem->is_number() || !JsonToInt64(mem->number(), &v) || v < 0) {
        return Status::Error(ErrorCode::kNumericOverflow,
                             ctx + " has a bad \"memory_bytes\" value")
            .At(src_name);
      }
      device.memory_bytes = v;
    }

    Status status = CheckAddDevice(&b, std::move(device), opts.limits);
    if (!status.ok()) {
      Status wrapped =
          Status::Error(status.code(), ctx + ": " + status.message());
      return wrapped.At(src_name);
    }
  }

  const json::Value* jdefault = root.Find("default_link");
  if (jdefault != nullptr) {
    if (!jdefault->is_object()) {
      return Status::Error(ErrorCode::kSyntax,
                           "\"default_link\" is not an object")
          .At(src_name);
    }
    LinkSpec link;
    if (!JsonRate(jdefault->Find("bandwidth_gbps"), &link.bandwidth_gbps)) {
      return Status::Error(ErrorCode::kNumericOverflow,
                           "default_link has a bad \"bandwidth_gbps\" value")
          .At(src_name);
    }
    if (!JsonCost(jdefault->Find("latency_us"), &link.latency_us)) {
      return Status::Error(ErrorCode::kNumericOverflow,
                           "default_link has a bad \"latency_us\" value")
          .At(src_name);
    }
    b.cluster.SetDefaultLink(link);
  }

  for (std::size_t i = 0; i < jlinks->items().size(); ++i) {
    const json::Value& jlink = jlinks->items()[i];
    const std::string ctx = "links[" + std::to_string(i) + "]";
    if (!jlink.is_object()) {
      return Status::Error(ErrorCode::kSyntax, ctx + " is not an object")
          .At(src_name);
    }
    DeviceId endpoints[2] = {-1, -1};
    const char* endpoint_keys[2] = {"src", "dst"};
    for (int k = 0; k < 2; ++k) {
      const json::Value* v = jlink.Find(endpoint_keys[k]);
      if (v == nullptr || !v->is_string()) {
        return Status::Error(ErrorCode::kSyntax,
                             ctx + " has a missing or non-string \"" +
                                 std::string(endpoint_keys[k]) + "\"")
            .At(src_name);
      }
      const auto it = b.device_ids.find(v->string_value());
      if (it == b.device_ids.end()) {
        return Status::Error(ErrorCode::kDanglingRef,
                             ctx + ": \"" + std::string(endpoint_keys[k]) +
                                 "\" " + Quote(v->string_value()) +
                                 " names no declared device")
            .At(src_name);
      }
      endpoints[k] = it->second;
    }
    LinkSpec link;
    if (!JsonRate(jlink.Find("bandwidth_gbps"), &link.bandwidth_gbps)) {
      return Status::Error(ErrorCode::kNumericOverflow,
                           ctx + " has a bad \"bandwidth_gbps\" value")
          .At(src_name);
    }
    if (!JsonCost(jlink.Find("latency_us"), &link.latency_us)) {
      return Status::Error(ErrorCode::kNumericOverflow,
                           ctx + " has a bad \"latency_us\" value")
          .At(src_name);
    }
    int channel_label = -1;
    const json::Value* chan = jlink.Find("channel");
    if (chan != nullptr) {
      if (!chan->is_string() || chan->string_value().empty()) {
        return Status::Error(ErrorCode::kSyntax,
                             ctx + " has a non-string or empty \"channel\"")
            .At(src_name);
      }
      channel_label = b.ChannelLabel(chan->string_value());
    }
    bool bidir = false;
    const json::Value* jbidir = jlink.Find("bidir");
    if (jbidir != nullptr) {
      if (!jbidir->is_bool()) {
        return Status::Error(ErrorCode::kSyntax,
                             ctx + " has a non-boolean \"bidir\"")
            .At(src_name);
      }
      bidir = jbidir->bool_value();
    }
    Status status = CheckAddLink(&b, endpoints[0], endpoints[1], link,
                                 channel_label, bidir);
    if (!status.ok()) {
      Status wrapped =
          Status::Error(status.code(), ctx + ": " + status.message());
      return wrapped.At(src_name);
    }
  }

  Status status = FinishValidate(b.cluster, opts);
  if (!status.ok()) return status;
  return std::move(b.cluster);
}

// Belt and braces for the no-throw contract: nothing in the impls
// should throw (every precondition is pre-checked before the EAGLE_CHECK
// guards in ClusterSpec can fire), but a latent bug must surface as a
// Status, not a terminate().
template <typename Fn>
StatusOr<ClusterSpec> NoThrow(const ClusterIngestOptions& opts, Fn&& fn) {
  try {
    return fn();
  } catch (const std::bad_alloc&) {
    return Status::Error(ErrorCode::kResourceLimit,
                         "out of memory while parsing")
        .At(opts.source_name);
  } catch (const std::exception& e) {
    return Status::Error(ErrorCode::kSyntax,
                         std::string("internal parser error: ") + e.what())
        .At(opts.source_name);
  }
}

}  // namespace

StatusOr<ClusterSpec> ParseTextCluster(std::istream& in,
                                       const ClusterIngestOptions& opts) {
  return NoThrow(opts, [&] { return ParseTextImpl(in, opts); });
}

StatusOr<ClusterSpec> ParseTextCluster(const std::string& text,
                                       const ClusterIngestOptions& opts) {
  std::istringstream in(text);
  return ParseTextCluster(in, opts);
}

StatusOr<ClusterSpec> ClusterFromJson(const std::string& text,
                                      const ClusterIngestOptions& opts) {
  return NoThrow(opts, [&] { return FromJsonImpl(text, opts); });
}

StatusOr<ClusterSpec> ImportClusterFile(const std::string& path,
                                        const ClusterIngestOptions& opts) {
  ClusterIngestOptions file_opts = opts;
  file_opts.source_name = path;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::Error(ErrorCode::kIo, "cannot open cluster file").At(path);
  }
  const bool is_json =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  if (is_json) {
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (in.bad()) {
      return Status::Error(ErrorCode::kIo, "read error").At(path);
    }
    return ClusterFromJson(buffer.str(), file_opts);
  }
  return ParseTextCluster(in, file_opts);
}

StatusOr<ClusterSpec> ResolveCluster(const std::string& spec,
                                     const ClusterIngestOptions& opts) {
  if (spec.empty() || spec == "default") return MakeDefaultCluster();
  if (spec == "2node8") return MakeTwoNodeNvlinkIbCluster();
  if (spec == "mixed") return MakeMixedSpeedCluster();
  return ImportClusterFile(spec, opts);
}

}  // namespace eagle::sim
