#include "partition/partition.h"

#include <algorithm>
#include <map>

#include "support/check.h"

namespace eagle::partition {

std::int64_t WeightedGraph::total_vertex_weight() const {
  std::int64_t total = 0;
  for (auto w : vwgt) total += w;
  return total;
}

WeightedGraph BuildWeightedGraph(const graph::OpGraph& graph) {
  const int n = graph.num_ops();
  // Merge parallel/bidirectional edges.
  std::vector<std::map<std::int32_t, std::int64_t>> nbr(
      static_cast<std::size_t>(n));
  for (const auto& e : graph.edges()) {
    nbr[static_cast<std::size_t>(e.src)][e.dst] += e.bytes;
    nbr[static_cast<std::size_t>(e.dst)][e.src] += e.bytes;
  }
  WeightedGraph wg;
  wg.xadj.reserve(static_cast<std::size_t>(n) + 1);
  wg.xadj.push_back(0);
  wg.vwgt.assign(static_cast<std::size_t>(n), 1);
  for (int v = 0; v < n; ++v) {
    for (const auto& [u, w] : nbr[static_cast<std::size_t>(v)]) {
      wg.adjncy.push_back(u);
      // Zero-byte edges still express structure; floor at 1 so matching and
      // min-cut see them.
      wg.adjwgt.push_back(std::max<std::int64_t>(w, 1));
    }
    wg.xadj.push_back(static_cast<std::int32_t>(wg.adjncy.size()));
  }
  return wg;
}

void ValidatePartitioning(const WeightedGraph& graph, const Partitioning& part,
                          int num_parts) {
  EAGLE_CHECK_MSG(static_cast<int>(part.size()) == graph.num_vertices(),
                  "partitioning size mismatch");
  for (auto p : part) {
    EAGLE_CHECK_MSG(p >= 0 && p < num_parts, "part id " << p << " invalid");
  }
}

std::int64_t CutWeight(const WeightedGraph& graph, const Partitioning& part) {
  std::int64_t cut = 0;
  for (int v = 0; v < graph.num_vertices(); ++v) {
    for (std::int32_t i = graph.xadj[static_cast<std::size_t>(v)];
         i < graph.xadj[static_cast<std::size_t>(v) + 1]; ++i) {
      const std::int32_t u = graph.adjncy[static_cast<std::size_t>(i)];
      if (u > v && part[static_cast<std::size_t>(v)] !=
                       part[static_cast<std::size_t>(u)]) {
        cut += graph.adjwgt[static_cast<std::size_t>(i)];
      }
    }
  }
  return cut;
}

PartitionMetrics ComputeMetrics(const WeightedGraph& graph,
                                const Partitioning& part, int num_parts) {
  ValidatePartitioning(graph, part, num_parts);
  PartitionMetrics m;
  m.part_weights.assign(static_cast<std::size_t>(num_parts), 0);
  for (int v = 0; v < graph.num_vertices(); ++v) {
    m.part_weights[static_cast<std::size_t>(part[static_cast<std::size_t>(v)])] +=
        graph.vwgt[static_cast<std::size_t>(v)];
  }
  for (auto w : m.part_weights) {
    if (w > 0) m.num_nonempty++;
  }
  m.cut_weight = CutWeight(graph, part);
  const double ideal = static_cast<double>(graph.total_vertex_weight()) /
                       std::max(1, num_parts);
  const std::int64_t max_weight =
      *std::max_element(m.part_weights.begin(), m.part_weights.end());
  m.balance = ideal > 0.0 ? static_cast<double>(max_weight) / ideal : 0.0;
  return m;
}

}  // namespace eagle::partition
