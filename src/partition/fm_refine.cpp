#include "partition/fm_refine.h"

#include <algorithm>
#include <numeric>

#include "support/check.h"

namespace eagle::partition {

std::int64_t RefineKWay(const WeightedGraph& graph, Partitioning& part,
                        const RefineOptions& options, support::Rng& rng) {
  ValidatePartitioning(graph, part, options.num_parts);
  const int n = graph.num_vertices();
  const int k = options.num_parts;

  std::vector<std::int64_t> part_weight(static_cast<std::size_t>(k), 0);
  for (int v = 0; v < n; ++v) {
    part_weight[static_cast<std::size_t>(part[static_cast<std::size_t>(v)])] +=
        graph.vwgt[static_cast<std::size_t>(v)];
  }
  const std::int64_t max_weight = static_cast<std::int64_t>(
      options.balance_tolerance *
      static_cast<double>(graph.total_vertex_weight()) / k) + 1;

  std::int64_t total_gain = 0;
  std::vector<std::int64_t> conn(static_cast<std::size_t>(k), 0);
  std::vector<std::int32_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);

  for (int pass = 0; pass < options.max_passes; ++pass) {
    rng.Shuffle(order);
    std::int64_t pass_gain = 0;
    for (std::int32_t v : order) {
      const std::int32_t from = part[static_cast<std::size_t>(v)];
      // Connectivity of v to each part.
      std::fill(conn.begin(), conn.end(), 0);
      bool boundary = false;
      for (std::int32_t i = graph.xadj[static_cast<std::size_t>(v)];
           i < graph.xadj[static_cast<std::size_t>(v) + 1]; ++i) {
        const std::int32_t p = part[static_cast<std::size_t>(
            graph.adjncy[static_cast<std::size_t>(i)])];
        conn[static_cast<std::size_t>(p)] +=
            graph.adjwgt[static_cast<std::size_t>(i)];
        if (p != from) boundary = true;
      }
      if (!boundary) continue;
      std::int32_t best = from;
      std::int64_t best_gain = 0;
      for (std::int32_t p = 0; p < k; ++p) {
        if (p == from) continue;
        const std::int64_t gain = conn[static_cast<std::size_t>(p)] -
                                  conn[static_cast<std::size_t>(from)];
        if (gain > best_gain &&
            part_weight[static_cast<std::size_t>(p)] +
                    graph.vwgt[static_cast<std::size_t>(v)] <=
                max_weight) {
          best = p;
          best_gain = gain;
        }
      }
      if (best != from) {
        part[static_cast<std::size_t>(v)] = best;
        part_weight[static_cast<std::size_t>(from)] -=
            graph.vwgt[static_cast<std::size_t>(v)];
        part_weight[static_cast<std::size_t>(best)] +=
            graph.vwgt[static_cast<std::size_t>(v)];
        pass_gain += best_gain;
      }
    }
    total_gain += pass_gain;
    if (pass_gain == 0) break;
  }
  return total_gain;
}

}  // namespace eagle::partition
