// Graph-partitioning substrate (§III-B): heuristic groupers that the paper
// benchmarks against the learned feed-forward grouper.
//
// Partitioners operate on an undirected weighted view of the OpGraph where
// edge weights are communication bytes — "the amount of data needed to be
// transmitted from the source to the destination operation".
#pragma once

#include <cstdint>
#include <vector>

#include "graph/grouped_graph.h"
#include "graph/op_graph.h"

namespace eagle::partition {

// Same encoding as graph::Grouping: part id per op.
using Partitioning = graph::Grouping;

// Undirected weighted graph in CSR form.
struct WeightedGraph {
  std::vector<std::int32_t> xadj;    // size n+1
  std::vector<std::int32_t> adjncy;  // neighbor ids
  std::vector<std::int64_t> adjwgt;  // edge weights (bytes)
  std::vector<std::int64_t> vwgt;    // vertex weights

  int num_vertices() const { return static_cast<int>(xadj.size()) - 1; }
  std::int64_t total_vertex_weight() const;
};

// Collapses the OpGraph into an undirected weighted graph (parallel edges
// merged, weights summed in both directions). Vertex weight is 1 per op —
// the partitioners balance op counts, as the paper's METIS setup does.
WeightedGraph BuildWeightedGraph(const graph::OpGraph& graph);

struct PartitionMetrics {
  std::int64_t cut_weight = 0;   // total weight of cut edges
  double balance = 0.0;          // max part weight / ideal part weight
  int num_nonempty = 0;
  std::vector<std::int64_t> part_weights;
};

PartitionMetrics ComputeMetrics(const WeightedGraph& graph,
                                const Partitioning& part, int num_parts);

// Cut weight alone (cheap inner-loop variant).
std::int64_t CutWeight(const WeightedGraph& graph, const Partitioning& part);

// Validates ids in [0, num_parts) and size == vertices; throws otherwise.
void ValidatePartitioning(const WeightedGraph& graph,
                          const Partitioning& part, int num_parts);

}  // namespace eagle::partition
