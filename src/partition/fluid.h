// Asynchronous fluid communities (Parés et al., 2017) — the paper's
// "Networkx" grouper baseline (§III-B).
//
// k communities start at random seeds and expand/contract by a density
// rule: each vertex (visited in random order) adopts the community with
// the highest sum of neighbor densities; a community's density is
// 1/|community|. After convergence, vertices left in no community join
// their most-connected one, and an optional balance pass bounds group
// sizes (the paper feeds groups into a placer that expects a fixed group
// count, so empty/huge groups are repaired).
#pragma once

#include "partition/partition.h"
#include "support/rng.h"

namespace eagle::partition {

struct FluidOptions {
  int num_communities = 64;
  int max_iterations = 100;
  std::uint64_t seed = 1;
  // Post-pass: repair empty communities and cap oversized ones so the
  // result is usable as a fixed-k grouping.
  bool balance = true;
  double balance_tolerance = 1.5;
};

Partitioning FluidCommunities(const graph::OpGraph& graph,
                              const FluidOptions& options);

Partitioning FluidCommunitiesWeighted(const WeightedGraph& graph,
                                      const FluidOptions& options);

}  // namespace eagle::partition
