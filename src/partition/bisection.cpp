#include "partition/bisection.h"

#include <algorithm>
#include <deque>
#include <numeric>
#include <vector>

#include "partition/fm_refine.h"
#include "support/check.h"

namespace eagle::partition {

namespace {

// Extracts the subgraph induced by `vertices` (local ids 0..n-1).
WeightedGraph InducedSubgraph(const WeightedGraph& graph,
                              const std::vector<std::int32_t>& vertices,
                              std::vector<std::int32_t>& global_of_local) {
  std::vector<std::int32_t> local_of_global(
      static_cast<std::size_t>(graph.num_vertices()), -1);
  global_of_local = vertices;
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    local_of_global[static_cast<std::size_t>(vertices[i])] =
        static_cast<std::int32_t>(i);
  }
  WeightedGraph sub;
  sub.xadj.push_back(0);
  for (std::int32_t v : vertices) {
    sub.vwgt.push_back(graph.vwgt[static_cast<std::size_t>(v)]);
    for (std::int32_t i = graph.xadj[static_cast<std::size_t>(v)];
         i < graph.xadj[static_cast<std::size_t>(v) + 1]; ++i) {
      const std::int32_t u = local_of_global[static_cast<std::size_t>(
          graph.adjncy[static_cast<std::size_t>(i)])];
      if (u >= 0) {
        sub.adjncy.push_back(u);
        sub.adjwgt.push_back(graph.adjwgt[static_cast<std::size_t>(i)]);
      }
    }
    sub.xadj.push_back(static_cast<std::int32_t>(sub.adjncy.size()));
  }
  return sub;
}

// Greedy BFS bisection seed: grow one side from a random vertex until it
// holds ~half the weight, then FM-refine the 2-way cut.
Partitioning Bisect(const WeightedGraph& graph,
                    const BisectionOptions& options, support::Rng& rng) {
  const int n = graph.num_vertices();
  Partitioning side(static_cast<std::size_t>(n), 1);
  if (n <= 1) {
    if (n == 1) side[0] = 0;
    return side;
  }
  const std::int64_t target = graph.total_vertex_weight() / 2;
  std::int64_t grown = 0;
  std::deque<std::int32_t> frontier{
      static_cast<std::int32_t>(rng.NextBelow(static_cast<std::uint64_t>(n)))};
  while (!frontier.empty() && grown < target) {
    const std::int32_t v = frontier.front();
    frontier.pop_front();
    if (side[static_cast<std::size_t>(v)] == 0) continue;
    side[static_cast<std::size_t>(v)] = 0;
    grown += graph.vwgt[static_cast<std::size_t>(v)];
    for (std::int32_t i = graph.xadj[static_cast<std::size_t>(v)];
         i < graph.xadj[static_cast<std::size_t>(v) + 1]; ++i) {
      frontier.push_back(graph.adjncy[static_cast<std::size_t>(i)]);
    }
  }
  // Disconnected graphs: fill from unvisited vertices.
  for (std::int32_t v = 0; v < n && grown < target; ++v) {
    if (side[static_cast<std::size_t>(v)] == 1) {
      side[static_cast<std::size_t>(v)] = 0;
      grown += graph.vwgt[static_cast<std::size_t>(v)];
    }
  }
  RefineOptions refine{2, options.balance_tolerance, options.refine_passes};
  RefineKWay(graph, side, refine, rng);
  return side;
}

void Recurse(const WeightedGraph& graph,
             const std::vector<std::int32_t>& vertices, int first_part,
             int num_parts, const BisectionOptions& options,
             support::Rng& rng, Partitioning& out) {
  if (num_parts <= 1 || vertices.size() <= 1) {
    for (std::int32_t v : vertices) {
      out[static_cast<std::size_t>(v)] = first_part;
    }
    return;
  }
  std::vector<std::int32_t> global_of_local;
  const WeightedGraph sub = InducedSubgraph(graph, vertices, global_of_local);
  const Partitioning side = Bisect(sub, options, rng);
  std::vector<std::int32_t> left, right;
  for (std::size_t i = 0; i < global_of_local.size(); ++i) {
    (side[i] == 0 ? left : right).push_back(global_of_local[i]);
  }
  const int left_parts = num_parts / 2;
  Recurse(graph, left, first_part, left_parts, options, rng, out);
  Recurse(graph, right, first_part + left_parts, num_parts - left_parts,
          options, rng, out);
}

}  // namespace

Partitioning BisectionPartitionWeighted(const WeightedGraph& graph,
                                        const BisectionOptions& options) {
  EAGLE_CHECK(options.num_parts >= 1);
  support::Rng rng(options.seed);
  Partitioning out(static_cast<std::size_t>(graph.num_vertices()), 0);
  std::vector<std::int32_t> all(static_cast<std::size_t>(graph.num_vertices()));
  std::iota(all.begin(), all.end(), 0);
  Recurse(graph, all, 0, options.num_parts, options, rng, out);
  ValidatePartitioning(graph, out, options.num_parts);
  return out;
}

Partitioning BisectionPartition(const graph::OpGraph& graph,
                                const BisectionOptions& options) {
  return BisectionPartitionWeighted(BuildWeightedGraph(graph), options);
}

}  // namespace eagle::partition
