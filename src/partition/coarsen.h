// Multilevel coarsening via heavy-edge matching (Karypis & Kumar).
#pragma once

#include <vector>

#include "partition/partition.h"
#include "support/rng.h"

namespace eagle::partition {

struct CoarseLevel {
  WeightedGraph graph;
  // fine vertex -> coarse vertex in `graph`.
  std::vector<std::int32_t> fine_to_coarse;
};

// One round of heavy-edge matching: each unmatched vertex (visited in
// random order) merges with its heaviest unmatched neighbor. Guarantees
// at most ceil(n/1) vertices and usually ~n/2.
CoarseLevel CoarsenOnce(const WeightedGraph& graph, support::Rng& rng);

// Repeats CoarsenOnce until the graph has <= target_vertices vertices or
// shrinkage stalls (<5% reduction). Returns the level hierarchy from fine
// (front) to coarse (back).
std::vector<CoarseLevel> BuildHierarchy(const WeightedGraph& graph,
                                        int target_vertices,
                                        support::Rng& rng);

}  // namespace eagle::partition
