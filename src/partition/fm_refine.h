// Greedy k-way boundary refinement (Fiduccia–Mattheyses style).
//
// Repeatedly moves boundary vertices to the neighboring part with the
// largest positive cut-gain, subject to a balance constraint. Used both
// for per-level refinement in the multilevel partitioner and as a
// post-pass for the fluid-communities grouper.
#pragma once

#include "partition/partition.h"
#include "support/rng.h"

namespace eagle::partition {

struct RefineOptions {
  int num_parts = 4;
  // A part may hold at most tolerance * (total/num_parts) vertex weight.
  double balance_tolerance = 1.15;
  int max_passes = 8;
};

// Refines `part` in place. Returns the total cut-weight improvement.
std::int64_t RefineKWay(const WeightedGraph& graph, Partitioning& part,
                        const RefineOptions& options, support::Rng& rng);

}  // namespace eagle::partition
