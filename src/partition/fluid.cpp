#include "partition/fluid.h"

#include <algorithm>
#include <numeric>

#include "partition/fm_refine.h"
#include "support/check.h"

namespace eagle::partition {

Partitioning FluidCommunitiesWeighted(const WeightedGraph& graph,
                                      const FluidOptions& options) {
  const int n = graph.num_vertices();
  const int k = std::min(options.num_communities, std::max(1, n));
  support::Rng rng(options.seed);

  Partitioning community(static_cast<std::size_t>(n), -1);
  std::vector<std::int32_t> size(static_cast<std::size_t>(k), 0);

  // Seed k random distinct vertices.
  std::vector<std::int32_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);
  for (int c = 0; c < k; ++c) {
    community[static_cast<std::size_t>(order[static_cast<std::size_t>(c)])] = c;
    size[static_cast<std::size_t>(c)] = 1;
  }

  std::vector<double> density(static_cast<std::size_t>(k), 1.0);
  auto update_density = [&](int c) {
    density[static_cast<std::size_t>(c)] =
        size[static_cast<std::size_t>(c)] > 0
            ? 1.0 / size[static_cast<std::size_t>(c)]
            : 0.0;
  };

  std::vector<double> weight(static_cast<std::size_t>(k), 0.0);
  bool changed = true;
  for (int iter = 0; iter < options.max_iterations && changed; ++iter) {
    changed = false;
    rng.Shuffle(order);
    for (std::int32_t v : order) {
      std::fill(weight.begin(), weight.end(), 0.0);
      const std::int32_t own = community[static_cast<std::size_t>(v)];
      if (own >= 0) weight[static_cast<std::size_t>(own)] +=
          density[static_cast<std::size_t>(own)];
      for (std::int32_t i = graph.xadj[static_cast<std::size_t>(v)];
           i < graph.xadj[static_cast<std::size_t>(v) + 1]; ++i) {
        const std::int32_t c = community[static_cast<std::size_t>(
            graph.adjncy[static_cast<std::size_t>(i)])];
        if (c >= 0) {
          // Edge weight scales the pull, extending the unweighted original
          // to communication graphs.
          weight[static_cast<std::size_t>(c)] +=
              density[static_cast<std::size_t>(c)] *
              static_cast<double>(graph.adjwgt[static_cast<std::size_t>(i)]);
        }
      }
      std::int32_t best = own;
      double best_weight = own >= 0 ? weight[static_cast<std::size_t>(own)]
                                    : 0.0;
      for (std::int32_t c = 0; c < k; ++c) {
        if (weight[static_cast<std::size_t>(c)] > best_weight) {
          best_weight = weight[static_cast<std::size_t>(c)];
          best = c;
        }
      }
      if (best != own && best >= 0) {
        // A community never abandons its last vertex.
        if (own >= 0 && size[static_cast<std::size_t>(own)] <= 1) continue;
        if (own >= 0) {
          size[static_cast<std::size_t>(own)]--;
          update_density(own);
        }
        community[static_cast<std::size_t>(v)] = best;
        size[static_cast<std::size_t>(best)]++;
        update_density(best);
        changed = true;
      }
    }
  }

  // Unreached vertices join their most-connected community (or random).
  for (std::int32_t v = 0; v < n; ++v) {
    if (community[static_cast<std::size_t>(v)] >= 0) continue;
    std::int64_t best_w = -1;
    std::int32_t best_c = static_cast<std::int32_t>(rng.NextBelow(
        static_cast<std::uint64_t>(k)));
    for (std::int32_t i = graph.xadj[static_cast<std::size_t>(v)];
         i < graph.xadj[static_cast<std::size_t>(v) + 1]; ++i) {
      const std::int32_t c = community[static_cast<std::size_t>(
          graph.adjncy[static_cast<std::size_t>(i)])];
      if (c >= 0 && graph.adjwgt[static_cast<std::size_t>(i)] > best_w) {
        best_w = graph.adjwgt[static_cast<std::size_t>(i)];
        best_c = c;
      }
    }
    community[static_cast<std::size_t>(v)] = best_c;
  }

  if (options.balance) {
    RefineOptions refine{options.num_communities, options.balance_tolerance,
                         2};
    // One light refinement pass also repairs badly unbalanced communities
    // without destroying the density structure.
    RefineKWay(graph, community, refine, rng);
  }
  ValidatePartitioning(graph, community, options.num_communities);
  return community;
}

Partitioning FluidCommunities(const graph::OpGraph& graph,
                              const FluidOptions& options) {
  return FluidCommunitiesWeighted(BuildWeightedGraph(graph), options);
}

}  // namespace eagle::partition
