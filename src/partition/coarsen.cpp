#include "partition/coarsen.h"

#include <algorithm>
#include <map>
#include <numeric>

#include "support/check.h"

namespace eagle::partition {

CoarseLevel CoarsenOnce(const WeightedGraph& graph, support::Rng& rng) {
  const int n = graph.num_vertices();
  std::vector<std::int32_t> match(static_cast<std::size_t>(n), -1);
  std::vector<std::int32_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);

  for (std::int32_t v : order) {
    if (match[static_cast<std::size_t>(v)] != -1) continue;
    std::int32_t best = -1;
    std::int64_t best_weight = -1;
    for (std::int32_t i = graph.xadj[static_cast<std::size_t>(v)];
         i < graph.xadj[static_cast<std::size_t>(v) + 1]; ++i) {
      const std::int32_t u = graph.adjncy[static_cast<std::size_t>(i)];
      if (match[static_cast<std::size_t>(u)] != -1 || u == v) continue;
      const std::int64_t w = graph.adjwgt[static_cast<std::size_t>(i)];
      if (w > best_weight) {
        best_weight = w;
        best = u;
      }
    }
    if (best >= 0) {
      match[static_cast<std::size_t>(v)] = best;
      match[static_cast<std::size_t>(best)] = v;
    } else {
      match[static_cast<std::size_t>(v)] = v;  // stays single
    }
  }

  CoarseLevel level;
  level.fine_to_coarse.assign(static_cast<std::size_t>(n), -1);
  std::int32_t next = 0;
  for (std::int32_t v = 0; v < n; ++v) {
    if (level.fine_to_coarse[static_cast<std::size_t>(v)] != -1) continue;
    const std::int32_t m = match[static_cast<std::size_t>(v)];
    level.fine_to_coarse[static_cast<std::size_t>(v)] = next;
    if (m != v) level.fine_to_coarse[static_cast<std::size_t>(m)] = next;
    ++next;
  }

  // Build the coarse graph with merged edges.
  std::vector<std::int64_t> vwgt(static_cast<std::size_t>(next), 0);
  std::vector<std::map<std::int32_t, std::int64_t>> nbr(
      static_cast<std::size_t>(next));
  for (std::int32_t v = 0; v < n; ++v) {
    const std::int32_t cv = level.fine_to_coarse[static_cast<std::size_t>(v)];
    vwgt[static_cast<std::size_t>(cv)] +=
        graph.vwgt[static_cast<std::size_t>(v)];
    for (std::int32_t i = graph.xadj[static_cast<std::size_t>(v)];
         i < graph.xadj[static_cast<std::size_t>(v) + 1]; ++i) {
      const std::int32_t cu = level.fine_to_coarse[static_cast<std::size_t>(
          graph.adjncy[static_cast<std::size_t>(i)])];
      if (cu != cv) {
        nbr[static_cast<std::size_t>(cv)][cu] +=
            graph.adjwgt[static_cast<std::size_t>(i)];
      }
    }
  }
  level.graph.vwgt = std::move(vwgt);
  level.graph.xadj.push_back(0);
  for (std::int32_t cv = 0; cv < next; ++cv) {
    for (const auto& [cu, w] : nbr[static_cast<std::size_t>(cv)]) {
      level.graph.adjncy.push_back(cu);
      level.graph.adjwgt.push_back(w);
    }
    level.graph.xadj.push_back(
        static_cast<std::int32_t>(level.graph.adjncy.size()));
  }
  return level;
}

std::vector<CoarseLevel> BuildHierarchy(const WeightedGraph& graph,
                                        int target_vertices,
                                        support::Rng& rng) {
  EAGLE_CHECK(target_vertices >= 1);
  std::vector<CoarseLevel> levels;
  const WeightedGraph* current = &graph;
  while (current->num_vertices() > target_vertices) {
    CoarseLevel level = CoarsenOnce(*current, rng);
    const int before = current->num_vertices();
    const int after = level.graph.num_vertices();
    levels.push_back(std::move(level));
    current = &levels.back().graph;
    if (after > before * 95 / 100) break;  // diminishing returns
  }
  return levels;
}

}  // namespace eagle::partition
