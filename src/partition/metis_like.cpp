#include "partition/metis_like.h"

#include <algorithm>
#include <deque>
#include <numeric>

#include "partition/coarsen.h"
#include "partition/fm_refine.h"
#include "support/check.h"

namespace eagle::partition {

namespace {

// Greedy graph growing on the coarsest graph: seeds k regions and grows
// each breadth-first by heaviest connection until weight targets are met.
Partitioning InitialPartition(const WeightedGraph& graph, int k,
                              support::Rng& rng) {
  const int n = graph.num_vertices();
  Partitioning part(static_cast<std::size_t>(n), -1);
  if (k >= n) {
    // Trivial: one vertex per part (extra parts stay empty).
    for (int v = 0; v < n; ++v) part[static_cast<std::size_t>(v)] = v;
    return part;
  }
  const std::int64_t target =
      (graph.total_vertex_weight() + k - 1) / k;

  std::vector<std::int32_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);

  int next_seed_idx = 0;
  auto next_unassigned = [&]() -> std::int32_t {
    while (next_seed_idx < n &&
           part[static_cast<std::size_t>(order[static_cast<std::size_t>(
               next_seed_idx)])] != -1) {
      ++next_seed_idx;
    }
    return next_seed_idx < n
               ? order[static_cast<std::size_t>(next_seed_idx)]
               : -1;
  };

  for (int p = 0; p < k; ++p) {
    const std::int32_t seed = next_unassigned();
    if (seed < 0) break;
    std::int64_t weight = 0;
    std::deque<std::int32_t> frontier{seed};
    part[static_cast<std::size_t>(seed)] = p;
    while (!frontier.empty() && weight < target) {
      const std::int32_t v = frontier.front();
      frontier.pop_front();
      weight += graph.vwgt[static_cast<std::size_t>(v)];
      for (std::int32_t i = graph.xadj[static_cast<std::size_t>(v)];
           i < graph.xadj[static_cast<std::size_t>(v) + 1]; ++i) {
        const std::int32_t u = graph.adjncy[static_cast<std::size_t>(i)];
        if (part[static_cast<std::size_t>(u)] == -1) {
          part[static_cast<std::size_t>(u)] = p;
          frontier.push_back(u);
        }
      }
    }
  }
  // Any leftovers join their most-connected part (or part 0).
  for (int v = 0; v < n; ++v) {
    if (part[static_cast<std::size_t>(v)] != -1) continue;
    std::int64_t best_w = -1;
    std::int32_t best_p = 0;
    for (std::int32_t i = graph.xadj[static_cast<std::size_t>(v)];
         i < graph.xadj[static_cast<std::size_t>(v) + 1]; ++i) {
      const std::int32_t p = part[static_cast<std::size_t>(
          graph.adjncy[static_cast<std::size_t>(i)])];
      if (p >= 0 && graph.adjwgt[static_cast<std::size_t>(i)] > best_w) {
        best_w = graph.adjwgt[static_cast<std::size_t>(i)];
        best_p = p;
      }
    }
    part[static_cast<std::size_t>(v)] = best_p;
  }
  return part;
}

}  // namespace

Partitioning MetisPartitionWeighted(const WeightedGraph& graph,
                                    const MetisOptions& options) {
  EAGLE_CHECK(options.num_parts >= 1);
  support::Rng rng(options.seed);
  const int coarsen_target =
      std::max(options.coarsen_target, 4 * options.num_parts);

  auto hierarchy = BuildHierarchy(graph, coarsen_target, rng);
  const WeightedGraph& coarsest =
      hierarchy.empty() ? graph : hierarchy.back().graph;

  Partitioning part = InitialPartition(coarsest, options.num_parts, rng);
  RefineOptions refine{options.num_parts, options.balance_tolerance,
                       options.refine_passes};
  RefineKWay(coarsest, part, refine, rng);

  // Uncoarsen: project and refine at each finer level.
  for (auto it = hierarchy.rbegin(); it != hierarchy.rend(); ++it) {
    const WeightedGraph& finer =
        (it + 1) == hierarchy.rend() ? graph : (it + 1)->graph;
    Partitioning fine_part(static_cast<std::size_t>(finer.num_vertices()));
    for (int v = 0; v < finer.num_vertices(); ++v) {
      fine_part[static_cast<std::size_t>(v)] = part[static_cast<std::size_t>(
          it->fine_to_coarse[static_cast<std::size_t>(v)])];
    }
    part = std::move(fine_part);
    RefineKWay(finer, part, refine, rng);
  }
  ValidatePartitioning(graph, part, options.num_parts);
  return part;
}

Partitioning MetisPartition(const graph::OpGraph& graph,
                            const MetisOptions& options) {
  return MetisPartitionWeighted(BuildWeightedGraph(graph), options);
}

}  // namespace eagle::partition
