// Recursive-bisection partitioner (Scotch-style, §II-C: "there are many
// well-studied algorithms for graph partitioning problems, such as the
// Scotch optimizer").
//
// Splits the graph into two balanced halves with FM refinement, then
// recurses on each half until num_parts parts exist. Compared with the
// direct multilevel k-way partitioner (metis_like.h), recursive bisection
// optimizes each cut locally — historically Scotch's default strategy.
#pragma once

#include "partition/partition.h"
#include "support/rng.h"

namespace eagle::partition {

struct BisectionOptions {
  int num_parts = 24;
  double balance_tolerance = 1.1;  // per bisection level
  int refine_passes = 6;
  std::uint64_t seed = 1;
};

Partitioning BisectionPartition(const graph::OpGraph& graph,
                                const BisectionOptions& options);

Partitioning BisectionPartitionWeighted(const WeightedGraph& graph,
                                        const BisectionOptions& options);

}  // namespace eagle::partition
