// METIS-style multilevel k-way partitioner (the paper's METIS grouper,
// Table I / Table II): heavy-edge-matching coarsening, greedy graph-growing
// initial partition on the coarsest level, then uncoarsening with k-way FM
// refinement at every level.
#pragma once

#include "partition/partition.h"
#include "support/rng.h"

namespace eagle::partition {

struct MetisOptions {
  int num_parts = 64;
  double balance_tolerance = 1.15;
  // Coarsening stops at ~max(this, 8 * num_parts) vertices.
  int coarsen_target = 512;
  int refine_passes = 8;
  std::uint64_t seed = 1;
};

// Partition the op graph's communication structure into num_parts groups
// minimizing cut bytes under the balance constraint.
Partitioning MetisPartition(const graph::OpGraph& graph,
                            const MetisOptions& options);

// Lower-level entry point on an already-built weighted graph.
Partitioning MetisPartitionWeighted(const WeightedGraph& graph,
                                    const MetisOptions& options);

}  // namespace eagle::partition
