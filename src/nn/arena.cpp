#include "nn/arena.h"

#include <cstddef>
#include <new>
#include <vector>

namespace eagle::nn {
namespace {

constexpr std::size_t kAlign = 32;
constexpr int kMinBucketLog2 = 6;   // 64 floats (256 B) smallest class
constexpr int kMaxBucketLog2 = 24;  // 16M floats (64 MB) largest class
constexpr int kNumBuckets = kMaxBucketLog2 - kMinBucketLog2 + 1;
// Per-thread cap on cached bytes; releases beyond it free immediately.
constexpr std::uint64_t kMaxPooledBytes = 64ull << 20;

// Smallest size class holding `count` floats, or -1 when too large to pool.
int BucketFor(std::int64_t count) {
  std::int64_t capacity = std::int64_t{1} << kMinBucketLog2;
  for (int b = 0; b < kNumBuckets; ++b) {
    if (count <= capacity) return b;
    capacity <<= 1;
  }
  return -1;
}

std::int64_t BucketCapacity(int bucket) {
  return std::int64_t{1} << (kMinBucketLog2 + bucket);
}

float* RawAlloc(std::int64_t count) {
  return static_cast<float*>(::operator new(
      static_cast<std::size_t>(count) * sizeof(float),
      std::align_val_t{kAlign}));
}

void RawFree(float* ptr) { ::operator delete(ptr, std::align_val_t{kAlign}); }

// Tracks whether the calling thread's arena exists yet / still. Tensors
// destroyed during thread teardown (after the arena's own destructor ran)
// must not resurrect it, so releases in that window free directly.
enum : int { kUnborn = 0, kAlive = 1, kDead = 2 };
thread_local int tl_arena_state = kUnborn;

struct ThreadArena {
  ThreadArena() { tl_arena_state = kAlive; }
  ~ThreadArena() {
    Trim();
    tl_arena_state = kDead;
  }

  void Trim() {
    for (auto& list : free_lists) {
      for (float* ptr : list) RawFree(ptr);
      list.clear();
    }
    stats.pooled_bytes = 0;
  }

  std::vector<float*> free_lists[kNumBuckets];
  ArenaStats stats;
};

ThreadArena& Arena() {
  thread_local ThreadArena arena;
  return arena;
}

}  // namespace

ArenaStats ArenaStatsSnapshot() {
  if (tl_arena_state == kDead) return {};
  return Arena().stats;
}

void ArenaTrim() {
  if (tl_arena_state == kDead) return;
  Arena().Trim();
}

namespace detail {

float* ArenaAcquire(std::int64_t count) {
  if (count <= 0) return nullptr;
  const int bucket = BucketFor(count);
  if (bucket < 0) return RawAlloc(count);
  // Even with the arena gone (thread teardown) the block must be
  // full-bucket-sized: a surviving Tensor may release it into another
  // thread's pool, which assumes class-sized blocks.
  if (tl_arena_state == kDead) return RawAlloc(BucketCapacity(bucket));
  ThreadArena& arena = Arena();
  ++arena.stats.acquires;
  auto& list = arena.free_lists[bucket];
  if (!list.empty()) {
    float* ptr = list.back();
    list.pop_back();
    ++arena.stats.pool_hits;
    arena.stats.pooled_bytes -=
        static_cast<std::uint64_t>(BucketCapacity(bucket)) * sizeof(float);
    return ptr;
  }
  ++arena.stats.fresh_allocs;
  // Pooled blocks are always full-bucket-sized so any same-class release,
  // from any thread, can recycle them interchangeably.
  return RawAlloc(BucketCapacity(bucket));
}

void ArenaRelease(float* ptr, std::int64_t count) {
  if (ptr == nullptr) return;
  const int bucket = BucketFor(count);
  if (bucket < 0 || tl_arena_state == kDead) {
    RawFree(ptr);
    return;
  }
  ThreadArena& arena = Arena();
  ++arena.stats.releases;
  const std::uint64_t bytes =
      static_cast<std::uint64_t>(BucketCapacity(bucket)) * sizeof(float);
  if (arena.stats.pooled_bytes + bytes > kMaxPooledBytes) {
    RawFree(ptr);
    return;
  }
  arena.free_lists[bucket].push_back(ptr);
  arena.stats.pooled_bytes += bytes;
}

}  // namespace detail
}  // namespace eagle::nn
