// Convenience re-exports: initializer functions live in layers.h (they
// need ParamStore); this header exists so callers that only initialize
// tensors don't pull in the layer definitions.
#pragma once

#include "nn/layers.h"
