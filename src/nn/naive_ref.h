// Scalar triple-loop GEMM reference kernels — the bit-identity oracle.
//
// These are the pre-blocking kernels from nn/tensor.cpp, preserved
// verbatim except for the removed `if (av == 0.0f) continue;` zero-skip
// (it silently dropped NaN/Inf propagation from the other operand:
// 0 · NaN must be NaN) and the scalar multiply-accumulate going through
// the shared detail::MulAdd so reference and optimized paths round
// identically. test_kernels asserts the production kernels match these
// bit-for-bit across a shape grid; bench_micro measures the speedup
// against them. Built as the separate eagle_nn_naive library so
// production binaries never link the slow path.
#pragma once

#include "nn/tensor.h"

namespace eagle::nn::naive {

// out += a * b  (m×k times k×n).
void GemmAccum(const Tensor& a, const Tensor& b, Tensor& out);
// out += aᵀ * b.
void GemmTransAAccum(const Tensor& a, const Tensor& b, Tensor& out);
// out += a * bᵀ.
void GemmTransBAccum(const Tensor& a, const Tensor& b, Tensor& out);

}  // namespace eagle::nn::naive
