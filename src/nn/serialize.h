// Parameter checkpointing: binary save/load of a ParamStore by name.
//
// Format (little endian):
//   magic "EAGLNN1\0" | u32 count | per param:
//     u32 name_len | name bytes | i32 rows | i32 cols | f32 data…
#pragma once

#include <iosfwd>
#include <string>

#include "nn/layers.h"

namespace eagle::nn {

bool SaveParams(const ParamStore& store, const std::string& path);

// Loads values into existing parameters matched by name (shape must
// match). Returns the number of parameters restored; throws on corrupt
// files or shape mismatches.
int LoadParams(ParamStore& store, const std::string& path);

// Stream variants, used to embed a parameter section inside composite
// files (the trainer's crash-safe checkpoints).
void SaveParams(const ParamStore& store, std::ostream& out);
int LoadParams(ParamStore& store, std::istream& in);

}  // namespace eagle::nn
