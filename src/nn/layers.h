// Neural-network layers used by the agents: parameter store, linear,
// LSTM cell, bidirectional LSTM encoder, Bahdanau attention, graph
// convolution. Layers own Parameter handles in a ParamStore and emit tape
// ops on each forward call.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/tape.h"
#include "support/rng.h"

namespace eagle::nn {

class ParamStore {
 public:
  ParamStore() = default;
  ParamStore(const ParamStore&) = delete;
  ParamStore& operator=(const ParamStore&) = delete;

  // Creates a zero-initialized parameter; name must be unique.
  Parameter* Create(const std::string& name, int rows, int cols);
  Parameter* Find(const std::string& name) const;

  const std::vector<std::unique_ptr<Parameter>>& params() const {
    return params_;
  }
  std::int64_t NumScalars() const;

  void ZeroGrads();
  // L2 norm over all gradients.
  double GradNorm() const;
  // Scales all gradients so the global norm is at most max_norm.
  // Returns the pre-clip norm.
  double ClipGradNorm(double max_norm);

 private:
  std::vector<std::unique_ptr<Parameter>> params_;
};

// ---- initializers ----
void UniformInit(Tensor& t, float lo, float hi, support::Rng& rng);
// Glorot/Xavier uniform based on (rows, cols) fan.
void XavierInit(Tensor& t, support::Rng& rng);

class Linear {
 public:
  Linear() = default;
  Linear(ParamStore& store, const std::string& name, int in_dim, int out_dim,
         support::Rng& rng);

  Var Apply(Tape& tape, Var x) const;  // x: R×in -> R×out
  int in_dim() const { return in_dim_; }
  int out_dim() const { return out_dim_; }

 private:
  Parameter* w_ = nullptr;  // in×out
  Parameter* b_ = nullptr;  // 1×out
  int in_dim_ = 0;
  int out_dim_ = 0;
};

// Standard LSTM cell with fused gate matmul; forget-gate bias starts at 1.
class LstmCell {
 public:
  LstmCell() = default;
  LstmCell(ParamStore& store, const std::string& name, int in_dim, int hidden,
           support::Rng& rng);

  struct State {
    Var h;  // R×H
    Var c;  // R×H
  };

  // Zero state for a batch of `rows` sequences.
  State ZeroState(Tape& tape, int rows) const;
  State Step(Tape& tape, Var x, const State& prev) const;

  int hidden() const { return hidden_; }

 private:
  Parameter* w_ = nullptr;  // (in+H)×4H, gate order [i f g o]
  Parameter* b_ = nullptr;  // 1×4H
  int in_dim_ = 0;
  int hidden_ = 0;
};

// Bidirectional encoder: runs forward and backward LSTMs over the rows of
// a S×F sequence and returns the S×2H concatenated outputs.
class BiLstmEncoder {
 public:
  BiLstmEncoder() = default;
  BiLstmEncoder(ParamStore& store, const std::string& name, int in_dim,
                int hidden, support::Rng& rng);

  struct Output {
    Var states;        // S×2H
    LstmCell::State final_fwd;
    LstmCell::State final_bwd;
  };
  Output Apply(Tape& tape, Var sequence) const;

  int hidden() const { return fwd_.hidden(); }

 private:
  LstmCell fwd_;
  LstmCell bwd_;
};

// Bahdanau (additive) content-based attention:
//   score_i = vᵀ tanh(W_e e_i + W_d d);   context = Σ softmax(score)_i e_i.
class BahdanauAttention {
 public:
  BahdanauAttention() = default;
  BahdanauAttention(ParamStore& store, const std::string& name, int enc_dim,
                    int dec_dim, int attn_dim, support::Rng& rng);

  // Precompute W_e·E once per sequence (E: S×enc_dim) — reused every step.
  Var ProjectEncoder(Tape& tape, Var encoder_states) const;

  struct Result {
    Var context;  // 1×enc_dim
    Var weights;  // 1×S (softmax attention weights)
  };
  Result Apply(Tape& tape, Var encoder_states, Var encoder_proj,
               Var decoder_state) const;

 private:
  Linear w_enc_;
  Linear w_dec_;
  Parameter* v_ = nullptr;  // attn×1
};

// Kipf & Welling graph convolution: relu(Â X W). Â is a constant input.
class GraphConv {
 public:
  GraphConv() = default;
  GraphConv(ParamStore& store, const std::string& name, int in_dim,
            int out_dim, support::Rng& rng);

  Var Apply(Tape& tape, Var normalized_adjacency, Var x,
            bool relu = true) const;

 private:
  Linear lin_;
};

}  // namespace eagle::nn
