#include "nn/tape.h"

#include <algorithm>
#include <cmath>

namespace eagle::nn {

void Tape::Reset() {
  // Newest-first so tensor buffers hit the arena freelists in LIFO
  // order (vector::clear would destroy front-to-back).
  while (!nodes_.empty()) nodes_.pop_back();
  param_cache_.clear();
}

Tape::Node& Tape::node(Var v) {
  EAGLE_CHECK_MSG(v.id >= 0 && v.id < num_nodes(), "invalid Var");
  return nodes_[static_cast<std::size_t>(v.id)];
}

const Tape::Node& Tape::node(Var v) const {
  EAGLE_CHECK_MSG(v.id >= 0 && v.id < num_nodes(), "invalid Var");
  return nodes_[static_cast<std::size_t>(v.id)];
}

Tensor& Tape::GradRef(Var v) {
  Node& n = node(v);
  if (n.grad.empty() && !n.value.empty()) {
    n.grad = Tensor(n.value.rows(), n.value.cols());
  }
  return n.grad;
}

Var Tape::Push(Tensor value, bool needs_grad, BackwardFn backward) {
  Node n;
  n.value = std::move(value);
  n.needs_grad = needs_grad;
  n.backward = std::move(backward);
  nodes_.push_back(std::move(n));
  return Var{static_cast<std::int32_t>(nodes_.size()) - 1};
}

Var Tape::Input(Tensor value) { return Push(std::move(value), false, {}); }

Var Tape::Param(Parameter* parameter) {
  EAGLE_CHECK(parameter != nullptr);
  for (const auto& [cached, var] : param_cache_) {
    if (cached == parameter) return var;
  }
  Var v = Push(parameter->value, true, {});
  node(v).bound = parameter;
  param_cache_.emplace_back(parameter, v);
  return v;
}

const Tensor& Tape::value(Var v) const { return node(v).value; }
const Tensor& Tape::grad(Var v) const { return node(v).grad; }

Var Tape::MatMul(Var a, Var b) {
  const Tensor& av = value(a);
  const Tensor& bv = value(b);
  Tensor out(av.rows(), bv.cols());
  GemmAccum(av, bv, out);
  const bool ng = node(a).needs_grad || node(b).needs_grad;
  Var result = Push(std::move(out), ng, {});
  if (ng) {
    node(result).backward = [this, a, b, result]() {
      const Tensor& g = node(result).grad;
      if (node(a).needs_grad) GemmTransBAccum(g, value(b), GradRef(a));
      if (node(b).needs_grad) GemmTransAAccum(value(a), g, GradRef(b));
    };
  }
  return result;
}

Var Tape::Add(Var a, Var b) {
  const Tensor& av = value(a);
  const Tensor& bv = value(b);
  const bool broadcast = bv.rows() == 1 && av.rows() != 1;
  EAGLE_CHECK_MSG(av.cols() == bv.cols() && (broadcast || av.rows() == bv.rows()),
                  "Add shape mismatch " << av.ShapeString() << " + "
                                        << bv.ShapeString());
  Tensor out = av;
  for (int r = 0; r < out.rows(); ++r) {
    const float* brow = bv.row(broadcast ? 0 : r);
    float* orow = out.row(r);
    for (int c = 0; c < out.cols(); ++c) orow[c] += brow[c];
  }
  const bool ng = node(a).needs_grad || node(b).needs_grad;
  Var result = Push(std::move(out), ng, {});
  if (ng) {
    node(result).backward = [this, a, b, result, broadcast]() {
      const Tensor& g = node(result).grad;
      if (node(a).needs_grad) Axpy(1.0f, g, GradRef(a));
      if (node(b).needs_grad) {
        Tensor& gb = GradRef(b);
        if (broadcast) {
          for (int r = 0; r < g.rows(); ++r) {
            const float* grow = g.row(r);
            float* brow = gb.row(0);
            for (int c = 0; c < g.cols(); ++c) brow[c] += grow[c];
          }
        } else {
          Axpy(1.0f, g, gb);
        }
      }
    };
  }
  return result;
}

Var Tape::Sub(Var a, Var b) {
  const Tensor& av = value(a);
  const Tensor& bv = value(b);
  EAGLE_CHECK_MSG(av.SameShape(bv), "Sub shape mismatch");
  Tensor out = av;
  Axpy(-1.0f, bv, out);
  const bool ng = node(a).needs_grad || node(b).needs_grad;
  Var result = Push(std::move(out), ng, {});
  if (ng) {
    node(result).backward = [this, a, b, result]() {
      const Tensor& g = node(result).grad;
      if (node(a).needs_grad) Axpy(1.0f, g, GradRef(a));
      if (node(b).needs_grad) Axpy(-1.0f, g, GradRef(b));
    };
  }
  return result;
}

Var Tape::Mul(Var a, Var b) {
  const Tensor& av = value(a);
  const Tensor& bv = value(b);
  EAGLE_CHECK_MSG(av.SameShape(bv), "Mul shape mismatch " << av.ShapeString()
                                                          << " vs "
                                                          << bv.ShapeString());
  Tensor out = av;
  {
    float* od = out.data();
    const float* bd = bv.data();
    for (std::int64_t i = 0; i < out.size(); ++i) od[i] *= bd[i];
  }
  const bool ng = node(a).needs_grad || node(b).needs_grad;
  Var result = Push(std::move(out), ng, {});
  if (ng) {
    node(result).backward = [this, a, b, result]() {
      const Tensor& g = node(result).grad;
      if (node(a).needs_grad) {
        Tensor& ga = GradRef(a);
        const float* gd = g.data();
        const float* bd = value(b).data();
        float* gad = ga.data();
        for (std::int64_t i = 0; i < g.size(); ++i) gad[i] += gd[i] * bd[i];
      }
      if (node(b).needs_grad) {
        Tensor& gb = GradRef(b);
        const float* gd = g.data();
        const float* ad = value(a).data();
        float* gbd = gb.data();
        for (std::int64_t i = 0; i < g.size(); ++i) gbd[i] += gd[i] * ad[i];
      }
    };
  }
  return result;
}

Var Tape::Scale(Var a, float s) {
  Tensor out = value(a);
  float* od = out.data();
  for (std::int64_t i = 0; i < out.size(); ++i) od[i] *= s;
  const bool ng = node(a).needs_grad;
  Var result = Push(std::move(out), ng, {});
  if (ng) {
    node(result).backward = [this, a, result, s]() {
      Axpy(s, node(result).grad, GradRef(a));
    };
  }
  return result;
}

Var Tape::AddScalar(Var a, float s) {
  Tensor out = value(a);
  float* od = out.data();
  for (std::int64_t i = 0; i < out.size(); ++i) od[i] += s;
  const bool ng = node(a).needs_grad;
  Var result = Push(std::move(out), ng, {});
  if (ng) {
    node(result).backward = [this, a, result]() {
      Axpy(1.0f, node(result).grad, GradRef(a));
    };
  }
  return result;
}

namespace {
template <typename F>
Tensor MapTensor(const Tensor& in, F f) {
  Tensor out = in;
  float* d = out.data();
  for (std::int64_t i = 0; i < out.size(); ++i) d[i] = f(d[i]);
  return out;
}
}  // namespace

Var Tape::Tanh(Var a) {
  Tensor out = MapTensor(value(a), [](float x) { return std::tanh(x); });
  const bool ng = node(a).needs_grad;
  Var result = Push(std::move(out), ng, {});
  if (ng) {
    node(result).backward = [this, a, result]() {
      const Tensor& g = node(result).grad;
      const Tensor& y = node(result).value;
      Tensor& ga = GradRef(a);
      const float* gd = g.data();
      const float* yd = y.data();
      float* gad = ga.data();
      for (std::int64_t i = 0; i < g.size(); ++i)
        gad[i] += gd[i] * (1.0f - yd[i] * yd[i]);
    };
  }
  return result;
}

Var Tape::Sigmoid(Var a) {
  Tensor out = MapTensor(value(a), [](float x) {
    return 1.0f / (1.0f + std::exp(-x));
  });
  const bool ng = node(a).needs_grad;
  Var result = Push(std::move(out), ng, {});
  if (ng) {
    node(result).backward = [this, a, result]() {
      const Tensor& g = node(result).grad;
      const Tensor& y = node(result).value;
      Tensor& ga = GradRef(a);
      const float* gd = g.data();
      const float* yd = y.data();
      float* gad = ga.data();
      for (std::int64_t i = 0; i < g.size(); ++i)
        gad[i] += gd[i] * yd[i] * (1.0f - yd[i]);
    };
  }
  return result;
}

Var Tape::Relu(Var a) {
  Tensor out = MapTensor(value(a), [](float x) { return x > 0 ? x : 0.0f; });
  const bool ng = node(a).needs_grad;
  Var result = Push(std::move(out), ng, {});
  if (ng) {
    node(result).backward = [this, a, result]() {
      const Tensor& g = node(result).grad;
      const Tensor& y = node(result).value;
      Tensor& ga = GradRef(a);
      const float* gd = g.data();
      const float* yd = y.data();
      float* gad = ga.data();
      for (std::int64_t i = 0; i < g.size(); ++i)
        gad[i] += yd[i] > 0 ? gd[i] : 0.0f;
    };
  }
  return result;
}

Var Tape::Exp(Var a) {
  Tensor out = MapTensor(value(a), [](float x) { return std::exp(x); });
  const bool ng = node(a).needs_grad;
  Var result = Push(std::move(out), ng, {});
  if (ng) {
    node(result).backward = [this, a, result]() {
      const Tensor& g = node(result).grad;
      const Tensor& y = node(result).value;
      Tensor& ga = GradRef(a);
      const float* gd = g.data();
      const float* yd = y.data();
      float* gad = ga.data();
      for (std::int64_t i = 0; i < g.size(); ++i) gad[i] += gd[i] * yd[i];
    };
  }
  return result;
}

Var Tape::MinElem(Var a, Var b) {
  const Tensor& av = value(a);
  const Tensor& bv = value(b);
  EAGLE_CHECK_MSG(av.SameShape(bv), "MinElem shape mismatch");
  Tensor out = av;
  {
    float* od = out.data();
    const float* bd = bv.data();
    for (std::int64_t i = 0; i < out.size(); ++i)
      od[i] = std::min(od[i], bd[i]);
  }
  const bool ng = node(a).needs_grad || node(b).needs_grad;
  Var result = Push(std::move(out), ng, {});
  if (ng) {
    node(result).backward = [this, a, b, result]() {
      const Tensor& g = node(result).grad;
      const float* ad = value(a).data();
      const float* bd = value(b).data();
      const float* gd = g.data();
      // Ties route the gradient to `a` (subgradient choice).
      if (node(a).needs_grad) {
        float* ga = GradRef(a).data();
        for (std::int64_t i = 0; i < g.size(); ++i)
          if (ad[i] <= bd[i]) ga[i] += gd[i];
      }
      if (node(b).needs_grad) {
        float* gb = GradRef(b).data();
        for (std::int64_t i = 0; i < g.size(); ++i)
          if (ad[i] > bd[i]) gb[i] += gd[i];
      }
    };
  }
  return result;
}

Var Tape::Clamp(Var a, float lo, float hi) {
  EAGLE_CHECK(lo <= hi);
  Tensor out = MapTensor(value(a), [lo, hi](float x) {
    return std::min(hi, std::max(lo, x));
  });
  const bool ng = node(a).needs_grad;
  Var result = Push(std::move(out), ng, {});
  if (ng) {
    node(result).backward = [this, a, result, lo, hi]() {
      const Tensor& g = node(result).grad;
      const float* ad = value(a).data();
      const float* gd = g.data();
      float* ga = GradRef(a).data();
      for (std::int64_t i = 0; i < g.size(); ++i)
        if (ad[i] >= lo && ad[i] <= hi) ga[i] += gd[i];
    };
  }
  return result;
}

Var Tape::Softmax(Var a) {
  const Tensor& av = value(a);
  Tensor out(av.rows(), av.cols());
  for (int r = 0; r < av.rows(); ++r) {
    const float* in = av.row(r);
    float* o = out.row(r);
    float mx = in[0];
    for (int c = 1; c < av.cols(); ++c) mx = std::max(mx, in[c]);
    float sum = 0.0f;
    for (int c = 0; c < av.cols(); ++c) {
      o[c] = std::exp(in[c] - mx);
      sum += o[c];
    }
    for (int c = 0; c < av.cols(); ++c) o[c] /= sum;
  }
  const bool ng = node(a).needs_grad;
  Var result = Push(std::move(out), ng, {});
  if (ng) {
    node(result).backward = [this, a, result]() {
      const Tensor& g = node(result).grad;
      const Tensor& y = node(result).value;
      Tensor& ga = GradRef(a);
      for (int r = 0; r < g.rows(); ++r) {
        const float* gr = g.row(r);
        const float* yr = y.row(r);
        float* gar = ga.row(r);
        float dot = 0.0f;
        for (int c = 0; c < g.cols(); ++c) dot += gr[c] * yr[c];
        for (int c = 0; c < g.cols(); ++c) gar[c] += yr[c] * (gr[c] - dot);
      }
    };
  }
  return result;
}

Var Tape::LogSoftmax(Var a) {
  const Tensor& av = value(a);
  Tensor out(av.rows(), av.cols());
  for (int r = 0; r < av.rows(); ++r) {
    const float* in = av.row(r);
    float* o = out.row(r);
    float mx = in[0];
    for (int c = 1; c < av.cols(); ++c) mx = std::max(mx, in[c]);
    float sum = 0.0f;
    for (int c = 0; c < av.cols(); ++c) sum += std::exp(in[c] - mx);
    const float lse = mx + std::log(sum);
    for (int c = 0; c < av.cols(); ++c) o[c] = in[c] - lse;
  }
  const bool ng = node(a).needs_grad;
  Var result = Push(std::move(out), ng, {});
  if (ng) {
    node(result).backward = [this, a, result]() {
      const Tensor& g = node(result).grad;
      const Tensor& y = node(result).value;  // log-probs
      Tensor& ga = GradRef(a);
      for (int r = 0; r < g.rows(); ++r) {
        const float* gr = g.row(r);
        const float* yr = y.row(r);
        float* gar = ga.row(r);
        float gsum = 0.0f;
        for (int c = 0; c < g.cols(); ++c) gsum += gr[c];
        for (int c = 0; c < g.cols(); ++c)
          gar[c] += gr[c] - std::exp(yr[c]) * gsum;
      }
    };
  }
  return result;
}

Var Tape::Transpose(Var a) {
  const Tensor& av = value(a);
  Tensor out(av.cols(), av.rows());
  for (int r = 0; r < av.rows(); ++r)
    for (int c = 0; c < av.cols(); ++c) out.at(c, r) = av.at(r, c);
  const bool ng = node(a).needs_grad;
  Var result = Push(std::move(out), ng, {});
  if (ng) {
    node(result).backward = [this, a, result]() {
      const Tensor& g = node(result).grad;
      Tensor& ga = GradRef(a);
      for (int r = 0; r < g.rows(); ++r)
        for (int c = 0; c < g.cols(); ++c) ga.at(c, r) += g.at(r, c);
    };
  }
  return result;
}

Var Tape::ConcatCols(Var a, Var b) {
  const Tensor& av = value(a);
  const Tensor& bv = value(b);
  EAGLE_CHECK_MSG(av.rows() == bv.rows(), "ConcatCols row mismatch");
  Tensor out(av.rows(), av.cols() + bv.cols());
  for (int r = 0; r < av.rows(); ++r) {
    std::copy(av.row(r), av.row(r) + av.cols(), out.row(r));
    std::copy(bv.row(r), bv.row(r) + bv.cols(), out.row(r) + av.cols());
  }
  const bool ng = node(a).needs_grad || node(b).needs_grad;
  // Hoisted before Push: `av` dangles once Push reallocates the tape.
  const int ac = av.cols();
  Var result = Push(std::move(out), ng, {});
  if (ng) {
    node(result).backward = [this, a, b, result, ac]() {
      const Tensor& g = node(result).grad;
      if (node(a).needs_grad) {
        Tensor& ga = GradRef(a);
        for (int r = 0; r < ga.rows(); ++r)
          for (int c = 0; c < ga.cols(); ++c) ga.at(r, c) += g.at(r, c);
      }
      if (node(b).needs_grad) {
        Tensor& gb = GradRef(b);
        for (int r = 0; r < gb.rows(); ++r)
          for (int c = 0; c < gb.cols(); ++c) gb.at(r, c) += g.at(r, c + ac);
      }
    };
  }
  return result;
}

Var Tape::ConcatRows(const std::vector<Var>& rows) {
  EAGLE_CHECK(!rows.empty());
  const int cols = value(rows[0]).cols();
  int total = 0;
  bool ng = false;
  for (Var v : rows) {
    EAGLE_CHECK_MSG(value(v).cols() == cols, "ConcatRows col mismatch");
    total += value(v).rows();
    ng = ng || node(v).needs_grad;
  }
  Tensor out(total, cols);
  int offset = 0;
  for (Var v : rows) {
    const Tensor& t = value(v);
    std::copy(t.data(), t.data() + t.size(), out.row(offset));
    offset += t.rows();
  }
  Var result = Push(std::move(out), ng, {});
  if (ng) {
    std::vector<Var> captured = rows;
    node(result).backward = [this, captured, result]() {
      const Tensor& g = node(result).grad;
      int off = 0;
      for (Var v : captured) {
        const int r = value(v).rows();
        if (node(v).needs_grad) {
          Tensor& gv = GradRef(v);
          for (int i = 0; i < r; ++i)
            for (int c = 0; c < g.cols(); ++c)
              gv.at(i, c) += g.at(off + i, c);
        }
        off += r;
      }
    };
  }
  return result;
}

Var Tape::SliceCols(Var a, int c0, int c1) {
  const Tensor& av = value(a);
  EAGLE_CHECK_MSG(0 <= c0 && c0 < c1 && c1 <= av.cols(),
                  "SliceCols [" << c0 << "," << c1 << ") of "
                                << av.ShapeString());
  Tensor out(av.rows(), c1 - c0);
  for (int r = 0; r < av.rows(); ++r)
    std::copy(av.row(r) + c0, av.row(r) + c1, out.row(r));
  const bool ng = node(a).needs_grad;
  Var result = Push(std::move(out), ng, {});
  if (ng) {
    node(result).backward = [this, a, result, c0]() {
      const Tensor& g = node(result).grad;
      Tensor& ga = GradRef(a);
      for (int r = 0; r < g.rows(); ++r)
        for (int c = 0; c < g.cols(); ++c) ga.at(r, c + c0) += g.at(r, c);
    };
  }
  return result;
}

Var Tape::Row(Var a, int r) {
  const Tensor& av = value(a);
  EAGLE_CHECK_MSG(r >= 0 && r < av.rows(), "Row " << r << " of "
                                                  << av.ShapeString());
  Tensor out(1, av.cols());
  std::copy(av.row(r), av.row(r) + av.cols(), out.row(0));
  const bool ng = node(a).needs_grad;
  Var result = Push(std::move(out), ng, {});
  if (ng) {
    node(result).backward = [this, a, result, r]() {
      const Tensor& g = node(result).grad;
      Tensor& ga = GradRef(a);
      for (int c = 0; c < g.cols(); ++c) ga.at(r, c) += g.at(0, c);
    };
  }
  return result;
}

Var Tape::Sum(Var a) {
  const Tensor& av = value(a);
  float total = 0.0f;
  const float* d = av.data();
  for (std::int64_t i = 0; i < av.size(); ++i) total += d[i];
  Tensor out(1, 1);
  out.at(0, 0) = total;
  const bool ng = node(a).needs_grad;
  Var result = Push(std::move(out), ng, {});
  if (ng) {
    node(result).backward = [this, a, result]() {
      const float g = node(result).grad.at(0, 0);
      Tensor& ga = GradRef(a);
      float* gd = ga.data();
      for (std::int64_t i = 0; i < ga.size(); ++i) gd[i] += g;
    };
  }
  return result;
}

Var Tape::Mean(Var a) {
  const auto n = static_cast<float>(value(a).size());
  return Scale(Sum(a), 1.0f / n);
}

Var Tape::SumRows(Var a) {
  const Tensor& av = value(a);
  Tensor out(1, av.cols());
  for (int r = 0; r < av.rows(); ++r) {
    const float* row = av.row(r);
    float* o = out.row(0);
    for (int c = 0; c < av.cols(); ++c) o[c] += row[c];
  }
  const bool ng = node(a).needs_grad;
  Var result = Push(std::move(out), ng, {});
  if (ng) {
    node(result).backward = [this, a, result]() {
      const Tensor& g = node(result).grad;
      Tensor& ga = GradRef(a);
      for (int r = 0; r < ga.rows(); ++r)
        for (int c = 0; c < ga.cols(); ++c) ga.at(r, c) += g.at(0, c);
    };
  }
  return result;
}

Var Tape::PickPerRow(Var a, std::vector<int> idx) {
  const Tensor& av = value(a);
  EAGLE_CHECK_MSG(static_cast<int>(idx.size()) == av.rows(),
                  "PickPerRow needs one index per row");
  Tensor out(av.rows(), 1);
  for (int r = 0; r < av.rows(); ++r) {
    EAGLE_CHECK_MSG(idx[static_cast<std::size_t>(r)] >= 0 &&
                        idx[static_cast<std::size_t>(r)] < av.cols(),
                    "PickPerRow index out of range");
    out.at(r, 0) = av.at(r, idx[static_cast<std::size_t>(r)]);
  }
  const bool ng = node(a).needs_grad;
  Var result = Push(std::move(out), ng, {});
  if (ng) {
    node(result).backward = [this, a, result, idx = std::move(idx)]() {
      const Tensor& g = node(result).grad;
      Tensor& ga = GradRef(a);
      for (int r = 0; r < g.rows(); ++r)
        ga.at(r, idx[static_cast<std::size_t>(r)]) += g.at(r, 0);
    };
  }
  return result;
}

void Tape::Backward(Var loss) {
  Node& ln = node(loss);
  EAGLE_CHECK_MSG(ln.value.rows() == 1 && ln.value.cols() == 1,
                  "Backward expects a scalar loss, got "
                      << ln.value.ShapeString());
  EAGLE_CHECK_MSG(ln.needs_grad, "loss does not depend on any parameter");
  GradRef(loss).at(0, 0) = 1.0f;
  for (auto it = nodes_.rbegin(); it != nodes_.rend(); ++it) {
    if (it->backward && !it->grad.empty()) it->backward();
  }
  // Flush leaf grads into their bound parameters.
  for (Node& n : nodes_) {
    if (n.bound != nullptr && !n.grad.empty()) {
      if (n.bound->grad.empty()) {
        n.bound->grad = Tensor(n.value.rows(), n.value.cols());
      }
      Axpy(1.0f, n.grad, n.bound->grad);
    }
  }
}

}  // namespace eagle::nn
