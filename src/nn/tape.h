// Reverse-mode automatic differentiation on a define-by-run tape.
//
// Each forward op pushes a node holding its value and a backward closure;
// Backward(loss) seeds d(loss)=1 and replays closures in reverse order,
// accumulating gradients into node slots and — for leaves bound via
// Param() — into the persistent Parameter::grad buffers the optimizer
// consumes. The tape is rebuilt every forward pass (PPO recomputes log
// probabilities under current parameters each epoch).
#pragma once

#include <vector>

#include "nn/tensor.h"
#include "support/inplace_function.h"

namespace eagle::nn {

// A persistent, named, trainable tensor with its gradient accumulator.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;
};

// Handle into a Tape; invalidated by Tape::Reset().
struct Var {
  std::int32_t id = -1;
  bool valid() const { return id >= 0; }
};

class Tape {
 public:
  Tape() = default;
  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

  // Clears all nodes (Vars from before are invalid afterwards). Nodes
  // are destroyed newest-first so their tensors return to the arena in
  // LIFO order — the next forward pass pops them back in request order.
  void Reset();
  int num_nodes() const { return static_cast<int>(nodes_.size()); }

  // Leaves.
  Var Input(Tensor value);          // constant (no gradient tracked)
  // Persistent leaf; grads accumulate into Parameter::grad. Calling
  // Param() twice for the same parameter on one tape returns the SAME
  // node (an LSTM unrolled for 256 steps must not copy its weight matrix
  // 256 times).
  Var Param(Parameter* parameter);

  const Tensor& value(Var v) const;
  const Tensor& grad(Var v) const;  // valid after Backward

  // ---- ops (shapes checked; gradients exact) ----
  Var MatMul(Var a, Var b);
  Var Add(Var a, Var b);        // same shape, or b is 1×C (row broadcast)
  Var Sub(Var a, Var b);        // same shape
  Var Mul(Var a, Var b);        // elementwise, same shape
  Var Scale(Var a, float s);
  Var AddScalar(Var a, float s);
  Var Tanh(Var a);
  Var Sigmoid(Var a);
  Var Relu(Var a);
  Var Exp(Var a);
  Var MinElem(Var a, Var b);    // elementwise min, same shape
  Var Clamp(Var a, float lo, float hi);  // zero gradient outside [lo, hi]
  Var Softmax(Var a);           // row-wise
  Var LogSoftmax(Var a);        // row-wise, numerically stable
  Var Transpose(Var a);
  Var ConcatCols(Var a, Var b);
  Var ConcatRows(const std::vector<Var>& rows);  // all 1×C or R_i×C
  Var SliceCols(Var a, int c0, int c1);          // columns [c0, c1)
  Var Row(Var a, int r);                         // 1×C view (copy)
  Var Sum(Var a);               // 1×1
  Var Mean(Var a);              // 1×1
  Var SumRows(Var a);           // R×C -> 1×C (column sums)
  // out[r, 0] = a[r, idx[r]] — gathers per-row entries (picked log-probs).
  Var PickPerRow(Var a, std::vector<int> idx);
  // Row-wise entropy of a probability matrix: out 1×1 = -Σ p log p / R…
  // left to callers via Mul/Sum of Softmax and LogSoftmax outputs.

  // Seeds d(loss)=1 (loss must be 1×1) and back-propagates.
  void Backward(Var loss);

 private:
  // Backward closures live inline in the node (no per-node heap block);
  // 64 bytes covers the largest capture (ConcatRows / PickPerRow: tape
  // pointer + a vector + two Vars ≈ 40 bytes).
  using BackwardFn = support::InplaceFunction<64>;

  struct Node {
    Tensor value;
    Tensor grad;                         // lazily sized at Backward
    BackwardFn backward;                 // may be empty for leaves
    Parameter* bound = nullptr;          // for Param leaves
    bool needs_grad = false;
  };

  Var Push(Tensor value, bool needs_grad, BackwardFn backward);
  Node& node(Var v);
  const Node& node(Var v) const;
  Tensor& GradRef(Var v);

  std::vector<Node> nodes_;
  std::vector<std::pair<Parameter*, Var>> param_cache_;
};

}  // namespace eagle::nn
