#include "nn/tensor.h"

#include <algorithm>
#include <cstddef>
#include <sstream>

#include "nn/arena.h"
#include "nn/gemm_inner.h"

#if defined(EAGLE_SIMD) && defined(__AVX2__) && defined(__FMA__)
#define EAGLE_GEMM_SIMD 1
#include <immintrin.h>
#endif

namespace eagle::nn {

Tensor::Tensor(int rows, int cols, float fill) : rows_(rows), cols_(cols) {
  EAGLE_CHECK_MSG(rows >= 0 && cols >= 0,
                  "bad tensor shape " << rows << "x" << cols);
  data_ = detail::ArenaAcquire(size());
  Fill(fill);
}

Tensor Tensor::FromData(int rows, int cols, std::vector<float> data) {
  EAGLE_CHECK_MSG(static_cast<std::int64_t>(data.size()) ==
                      static_cast<std::int64_t>(rows) * cols,
                  "data size " << data.size() << " != " << rows << "x" << cols);
  Tensor t;
  t.rows_ = rows;
  t.cols_ = cols;
  t.data_ = detail::ArenaAcquire(t.size());
  std::copy(data.begin(), data.end(), t.data_);
  return t;
}

Tensor::Tensor(const Tensor& other) : rows_(other.rows_), cols_(other.cols_) {
  data_ = detail::ArenaAcquire(size());
  std::copy(other.data_, other.data_ + size(), data_);
}

Tensor::Tensor(Tensor&& other) noexcept
    : rows_(other.rows_), cols_(other.cols_), data_(other.data_) {
  other.rows_ = 0;
  other.cols_ = 0;
  other.data_ = nullptr;
}

Tensor& Tensor::operator=(const Tensor& other) {
  if (this == &other) return *this;
  if (size() != other.size()) {
    detail::ArenaRelease(data_, size());
    data_ = detail::ArenaAcquire(other.size());
  }
  rows_ = other.rows_;
  cols_ = other.cols_;
  std::copy(other.data_, other.data_ + size(), data_);
  return *this;
}

Tensor& Tensor::operator=(Tensor&& other) noexcept {
  if (this == &other) return *this;
  detail::ArenaRelease(data_, size());
  rows_ = other.rows_;
  cols_ = other.cols_;
  data_ = other.data_;
  other.rows_ = 0;
  other.cols_ = 0;
  other.data_ = nullptr;
  return *this;
}

Tensor::~Tensor() { detail::ArenaRelease(data_, size()); }

void Tensor::Fill(float v) { std::fill(data_, data_ + size(), v); }

std::string Tensor::ShapeString() const {
  std::ostringstream os;
  os << rows_ << "x" << cols_;
  return os.str();
}

// ---------------------------------------------------------------------------
// Blocked GEMM kernels.
//
// Bit-identity with the naive reference (nn/naive_ref.cpp) holds because
// each output element's value is a fold over one reduction index in
// ascending order, every step a single detail::MulAdd, and keeping that
// fold in a register across the loop instead of in out-memory performs
// the exact same rounding sequence. The blocking below only rearranges
// *which* element's fold advances next, never the order within a fold.
//
// GemmAccum and GemmTransAAccum share one panel kernel: both are
// out[r, j] += Σ_p A(r, p) · b[p, j] with A addressed through a (row
// stride, reduction stride) pair — (lda, 1) for A = a and (1, lda) for
// A = aᵀ. The panel holds a kMr×kNr accumulator tile in registers; the
// j-inner loops have compile-time trip count kNr so they vectorize, and
// the EAGLE_SIMD path writes the same tile with AVX2 fma intrinsics
// (lane-wise identical to scalar fma). GemmTransBAccum is dot-product
// shaped — its per-element fold runs over the contiguous j axis, so
// vectorizing it would reassociate; instead kMr×kPr independent scalar
// fma chains run interleaved, hiding fma latency without touching any
// chain's order.
// ---------------------------------------------------------------------------

namespace {

using detail::MulAdd;

constexpr int kMr = 4;     // rows per register tile
constexpr int kNr = 16;    // max tile width in columns (two 8-float vectors)
constexpr int kDotMr = 4;  // rows per dot tile in GemmTransBAccum
constexpr int kPr = 4;     // dot-product chains per row in GemmTransBAccum

#if EAGLE_GEMM_SIMD
// MR×(8·NV) tile: o[r, 0:8NV] += Σ_p A(r, p) · b[p, 0:8NV]. The k loop is
// unrolled by two — each accumulator still folds p in ascending order,
// the unroll only amortizes loop control and address arithmetic over
// twice the fma work.
template <int MR, int NV>
void GemmPanelSimd(const float* a, std::ptrdiff_t a_row_stride,
                   std::ptrdiff_t a_red_stride, const float* b,
                   std::ptrdiff_t ldb, float* o, std::ptrdiff_t ldo, int kk) {
  __m256 acc[MR][NV];
  for (int r = 0; r < MR; ++r)
    for (int v = 0; v < NV; ++v)
      acc[r][v] = _mm256_loadu_ps(o + r * ldo + 8 * v);
  int p = 0;
  for (; p + 2 <= kk; p += 2) {
    const float* bp0 = b + p * ldb;
    const float* bp1 = bp0 + ldb;
    __m256 b0[NV], b1[NV];
    for (int v = 0; v < NV; ++v) {
      b0[v] = _mm256_loadu_ps(bp0 + 8 * v);
      b1[v] = _mm256_loadu_ps(bp1 + 8 * v);
    }
    const float* ap = a + p * a_red_stride;
    for (int r = 0; r < MR; ++r) {
      const __m256 av0 = _mm256_set1_ps(ap[r * a_row_stride]);
      for (int v = 0; v < NV; ++v)
        acc[r][v] = _mm256_fmadd_ps(av0, b0[v], acc[r][v]);
      const __m256 av1 = _mm256_set1_ps(ap[r * a_row_stride + a_red_stride]);
      for (int v = 0; v < NV; ++v)
        acc[r][v] = _mm256_fmadd_ps(av1, b1[v], acc[r][v]);
    }
  }
  for (; p < kk; ++p) {
    const float* bp = b + p * ldb;
    __m256 bv[NV];
    for (int v = 0; v < NV; ++v) bv[v] = _mm256_loadu_ps(bp + 8 * v);
    for (int r = 0; r < MR; ++r) {
      const __m256 av =
          _mm256_set1_ps(a[r * a_row_stride + p * a_red_stride]);
      for (int v = 0; v < NV; ++v)
        acc[r][v] = _mm256_fmadd_ps(av, bv[v], acc[r][v]);
    }
  }
  for (int r = 0; r < MR; ++r)
    for (int v = 0; v < NV; ++v)
      _mm256_storeu_ps(o + r * ldo + 8 * v, acc[r][v]);
}
#endif  // EAGLE_GEMM_SIMD

// Portable tile with compile-time bounds so the accumulators stay in
// registers and the c-loops vectorize.
template <int MR, int NR>
void GemmPanelFixed(const float* a, std::ptrdiff_t a_row_stride,
                    std::ptrdiff_t a_red_stride, const float* b,
                    std::ptrdiff_t ldb, float* o, std::ptrdiff_t ldo,
                    int kk) {
  float acc[MR][NR];
  for (int r = 0; r < MR; ++r)
    for (int c = 0; c < NR; ++c) acc[r][c] = o[r * ldo + c];
  for (int p = 0; p < kk; ++p) {
    const float* bp = b + p * ldb;
    for (int r = 0; r < MR; ++r) {
      const float av = a[r * a_row_stride + p * a_red_stride];
      for (int c = 0; c < NR; ++c) acc[r][c] = MulAdd(av, bp[c], acc[r][c]);
    }
  }
  for (int r = 0; r < MR; ++r)
    for (int c = 0; c < NR; ++c) o[r * ldo + c] = acc[r][c];
}

// One MR-row panel of compile-time width NR (16 or 8 columns).
template <int MR, int NR>
void GemmPanel(const float* a, std::ptrdiff_t a_row_stride,
               std::ptrdiff_t a_red_stride, const float* b,
               std::ptrdiff_t ldb, float* o, std::ptrdiff_t ldo, int kk) {
#if EAGLE_GEMM_SIMD
  GemmPanelSimd<MR, NR / 8>(a, a_row_stride, a_red_stride, b, ldb, o, ldo,
                            kk);
#else
  GemmPanelFixed<MR, NR>(a, a_row_stride, a_red_stride, b, ldb, o, ldo, kk);
#endif
}

// Narrow tail (w < 8 columns), runtime bounds — only sub-vector-width
// column remainders and matrix–vector shapes land here.
void GemmPanelNarrow(const float* a, std::ptrdiff_t a_row_stride,
                     std::ptrdiff_t a_red_stride, const float* b,
                     std::ptrdiff_t ldb, float* o, std::ptrdiff_t ldo,
                     int mr, int w, int kk) {
  float acc[kMr][8];
  for (int r = 0; r < mr; ++r)
    for (int c = 0; c < w; ++c) acc[r][c] = o[r * ldo + c];
  for (int p = 0; p < kk; ++p) {
    const float* bp = b + p * ldb;
    for (int r = 0; r < mr; ++r) {
      const float av = a[r * a_row_stride + p * a_red_stride];
      for (int c = 0; c < w; ++c) acc[r][c] = MulAdd(av, bp[c], acc[r][c]);
    }
  }
  for (int r = 0; r < mr; ++r)
    for (int c = 0; c < w; ++c) o[r * ldo + c] = acc[r][c];
}

// All m rows of one NR-wide column panel; remainder rows dispatch to
// register kernels of their exact height instead of a runtime-bound
// fallback (a 6% edge fraction through a slow path costs 2× overall).
template <int NR>
void GemmRowSweep(const float* a, std::ptrdiff_t a_row_stride,
                  std::ptrdiff_t a_red_stride, const float* b,
                  std::ptrdiff_t ldb, float* o, std::ptrdiff_t ldo, int m,
                  int kk) {
  int i0 = 0;
  for (; i0 + kMr <= m; i0 += kMr) {
    GemmPanel<kMr, NR>(a + i0 * a_row_stride, a_row_stride, a_red_stride, b,
                       ldb, o + i0 * ldo, ldo, kk);
  }
  const float* ae = a + i0 * a_row_stride;
  float* oe = o + i0 * ldo;
  switch (m - i0) {
    case 1:
      GemmPanel<1, NR>(ae, a_row_stride, a_red_stride, b, ldb, oe, ldo, kk);
      break;
    case 2:
      GemmPanel<2, NR>(ae, a_row_stride, a_red_stride, b, ldb, oe, ldo, kk);
      break;
    case 3:
      GemmPanel<3, NR>(ae, a_row_stride, a_red_stride, b, ldb, oe, ldo, kk);
      break;
    default:
      break;
  }
}

// o(m×n, stride ldo) += Σ_p A(r, p) · b[p, j] with A given as (base, row
// stride, reduction stride) and the reduction running p = 0..kk-1.
void GemmBlocked(const float* a, std::ptrdiff_t a_row_stride,
                 std::ptrdiff_t a_red_stride, const float* b,
                 std::ptrdiff_t ldb, float* o, std::ptrdiff_t ldo, int m,
                 int n, int kk) {
  int j0 = 0;
  for (; j0 + kNr <= n; j0 += kNr) {
    GemmRowSweep<kNr>(a, a_row_stride, a_red_stride, b + j0, ldb, o + j0,
                      ldo, m, kk);
  }
  if (n - j0 >= 8) {
    GemmRowSweep<8>(a, a_row_stride, a_red_stride, b + j0, ldb, o + j0, ldo,
                    m, kk);
    j0 += 8;
  }
  if (j0 < n) {
    for (int i0 = 0; i0 < m; i0 += kMr) {
      GemmPanelNarrow(a + i0 * a_row_stride, a_row_stride, a_red_stride,
                      b + j0, ldb, o + i0 * ldo + j0, ldo,
                      std::min(kMr, m - i0), n - j0, kk);
    }
  }
}

// MR×PR dot tile: o[r, c] += Σ_j a[r, j] · b[c, j]. Each (r, c) chain
// starts from 0.0f and is added to o once at the end, exactly like the
// reference; the chains only run interleaved for ILP.
template <int MR, int PR>
void DotPanelFixed(const float* a, std::ptrdiff_t lda, const float* b,
                   std::ptrdiff_t ldb, float* o, std::ptrdiff_t ldo, int n) {
  float acc[MR][PR] = {};
  for (int j = 0; j < n; ++j) {
    for (int r = 0; r < MR; ++r) {
      const float av = a[r * lda + j];
      for (int c = 0; c < PR; ++c)
        acc[r][c] = MulAdd(av, b[c * ldb + j], acc[r][c]);
    }
  }
  for (int r = 0; r < MR; ++r)
    for (int c = 0; c < PR; ++c) o[r * ldo + c] += acc[r][c];
}

// One MR-row band of the dot product grid: full kPr-wide tiles, then a
// fixed-width tile for the 1–3 column remainder.
template <int MR>
void DotRowBand(const float* a, std::ptrdiff_t lda, const float* b,
                std::ptrdiff_t ldb, float* o, std::ptrdiff_t ldo, int k,
                int n) {
  int p0 = 0;
  for (; p0 + kPr <= k; p0 += kPr) {
    DotPanelFixed<MR, kPr>(a, lda, b + p0 * ldb, ldb, o + p0, ldo, n);
  }
  const float* be = b + p0 * ldb;
  switch (k - p0) {
    case 1:
      DotPanelFixed<MR, 1>(a, lda, be, ldb, o + p0, ldo, n);
      break;
    case 2:
      DotPanelFixed<MR, 2>(a, lda, be, ldb, o + p0, ldo, n);
      break;
    case 3:
      DotPanelFixed<MR, 3>(a, lda, be, ldb, o + p0, ldo, n);
      break;
    default:
      break;
  }
}

}  // namespace

void GemmAccum(const Tensor& a, const Tensor& b, Tensor& out) {
  EAGLE_CHECK_MSG(a.cols() == b.rows() && out.rows() == a.rows() &&
                      out.cols() == b.cols(),
                  "gemm shape mismatch: " << a.ShapeString() << " * "
                                          << b.ShapeString() << " -> "
                                          << out.ShapeString());
  const int m = a.rows(), k = a.cols(), n = b.cols();
  if (m == 0 || n == 0) return;
  GemmBlocked(a.data(), /*a_row_stride=*/k, /*a_red_stride=*/1, b.data(), n,
              out.data(), n, m, n, k);
}

void GemmTransAAccum(const Tensor& a, const Tensor& b, Tensor& out) {
  // out(k, n) += aᵀ(k, m) * b(m, n), a is m×k. The reduction runs over
  // a's rows (i ascending), matching the reference's i-outer loop.
  EAGLE_CHECK_MSG(a.rows() == b.rows() && out.rows() == a.cols() &&
                      out.cols() == b.cols(),
                  "gemmTA shape mismatch: " << a.ShapeString() << "ᵀ * "
                                            << b.ShapeString() << " -> "
                                            << out.ShapeString());
  const int m = a.rows(), k = a.cols(), n = b.cols();
  if (k == 0 || n == 0) return;
  GemmBlocked(a.data(), /*a_row_stride=*/1, /*a_red_stride=*/k, b.data(), n,
              out.data(), n, k, n, m);
}

void GemmTransBAccum(const Tensor& a, const Tensor& b, Tensor& out) {
  // out(m, k) += a(m, n) * bᵀ(n, k), b is k×n.
  EAGLE_CHECK_MSG(a.cols() == b.cols() && out.rows() == a.rows() &&
                      out.cols() == b.rows(),
                  "gemmTB shape mismatch: " << a.ShapeString() << " * "
                                            << b.ShapeString() << "ᵀ -> "
                                            << out.ShapeString());
  const int m = a.rows(), n = a.cols(), k = b.rows();
  for (int i0 = 0; i0 < m; i0 += kDotMr) {
    switch (std::min(kDotMr, m - i0)) {
      case 4:
        DotRowBand<4>(a.row(i0), n, b.data(), n, out.row(i0), k, k, n);
        break;
      case 3:
        DotRowBand<3>(a.row(i0), n, b.data(), n, out.row(i0), k, k, n);
        break;
      case 2:
        DotRowBand<2>(a.row(i0), n, b.data(), n, out.row(i0), k, k, n);
        break;
      case 1:
        DotRowBand<1>(a.row(i0), n, b.data(), n, out.row(i0), k, k, n);
        break;
      default:
        break;
    }
  }
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  Tensor out(a.rows(), b.cols());
  GemmAccum(a, b, out);
  return out;
}

void Axpy(float alpha, const Tensor& x, Tensor& y) {
  EAGLE_CHECK_MSG(x.SameShape(y), "axpy shape mismatch");
  const float* xd = x.data();
  float* yd = y.data();
  const std::int64_t n = x.size();
  for (std::int64_t i = 0; i < n; ++i) yd[i] = MulAdd(alpha, xd[i], yd[i]);
}

double SquaredNorm(const Tensor& t) {
  double acc = 0.0;
  const float* d = t.data();
  for (std::int64_t i = 0; i < t.size(); ++i) {
    acc += static_cast<double>(d[i]) * d[i];
  }
  return acc;
}

}  // namespace eagle::nn
