#include "nn/tensor.h"

#include <algorithm>
#include <sstream>

namespace eagle::nn {

Tensor::Tensor(int rows, int cols, float fill)
    : rows_(rows), cols_(cols),
      data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
            fill) {
  EAGLE_CHECK_MSG(rows >= 0 && cols >= 0,
                  "bad tensor shape " << rows << "x" << cols);
}

Tensor Tensor::FromData(int rows, int cols, std::vector<float> data) {
  EAGLE_CHECK_MSG(static_cast<std::int64_t>(data.size()) ==
                      static_cast<std::int64_t>(rows) * cols,
                  "data size " << data.size() << " != " << rows << "x" << cols);
  Tensor t;
  t.rows_ = rows;
  t.cols_ = cols;
  t.data_ = std::move(data);
  return t;
}

void Tensor::Fill(float v) { std::fill(data_.begin(), data_.end(), v); }

std::string Tensor::ShapeString() const {
  std::ostringstream os;
  os << rows_ << "x" << cols_;
  return os.str();
}

void GemmAccum(const Tensor& a, const Tensor& b, Tensor& out) {
  EAGLE_CHECK_MSG(a.cols() == b.rows() && out.rows() == a.rows() &&
                      out.cols() == b.cols(),
                  "gemm shape mismatch: " << a.ShapeString() << " * "
                                          << b.ShapeString() << " -> "
                                          << out.ShapeString());
  const int m = a.rows(), k = a.cols(), n = b.cols();
  for (int i = 0; i < m; ++i) {
    const float* arow = a.row(i);
    float* orow = out.row(i);
    for (int p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b.row(p);
      for (int j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

void GemmTransAAccum(const Tensor& a, const Tensor& b, Tensor& out) {
  // out(k, n) += aᵀ(k, m) * b(m, n), a is m×k.
  EAGLE_CHECK_MSG(a.rows() == b.rows() && out.rows() == a.cols() &&
                      out.cols() == b.cols(),
                  "gemmTA shape mismatch: " << a.ShapeString() << "ᵀ * "
                                            << b.ShapeString() << " -> "
                                            << out.ShapeString());
  const int m = a.rows(), k = a.cols(), n = b.cols();
  for (int i = 0; i < m; ++i) {
    const float* arow = a.row(i);
    const float* brow = b.row(i);
    for (int p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      float* orow = out.row(p);
      for (int j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

void GemmTransBAccum(const Tensor& a, const Tensor& b, Tensor& out) {
  // out(m, k) += a(m, n) * bᵀ(n, k), b is k×n.
  EAGLE_CHECK_MSG(a.cols() == b.cols() && out.rows() == a.rows() &&
                      out.cols() == b.rows(),
                  "gemmTB shape mismatch: " << a.ShapeString() << " * "
                                            << b.ShapeString() << "ᵀ -> "
                                            << out.ShapeString());
  const int m = a.rows(), n = a.cols(), k = b.rows();
  for (int i = 0; i < m; ++i) {
    const float* arow = a.row(i);
    float* orow = out.row(i);
    for (int p = 0; p < k; ++p) {
      const float* brow = b.row(p);
      float acc = 0.0f;
      for (int j = 0; j < n; ++j) acc += arow[j] * brow[j];
      orow[p] += acc;
    }
  }
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  Tensor out(a.rows(), b.cols());
  GemmAccum(a, b, out);
  return out;
}

void Axpy(float alpha, const Tensor& x, Tensor& y) {
  EAGLE_CHECK_MSG(x.SameShape(y), "axpy shape mismatch");
  const float* xd = x.data();
  float* yd = y.data();
  const std::int64_t n = x.size();
  for (std::int64_t i = 0; i < n; ++i) yd[i] += alpha * xd[i];
}

double SquaredNorm(const Tensor& t) {
  double acc = 0.0;
  const float* d = t.data();
  for (std::int64_t i = 0; i < t.size(); ++i) {
    acc += static_cast<double>(d[i]) * d[i];
  }
  return acc;
}

}  // namespace eagle::nn
