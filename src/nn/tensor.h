// Dense fp32 matrix type used by the agent networks.
//
// Everything the agents compute (grouper logits, LSTM states, attention
// scores) is a rank-2 tensor; vectors are 1×C or R×1. Storage comes from
// the per-thread freelist arena (nn/arena.h) so tape-heavy training loops
// stop paying malloc per node. Kernels are register-blocked with
// vectorizable j-inner loops (plus an intrinsics path behind EAGLE_SIMD)
// and are bit-identical to the naive triple-loop reference in
// nn/naive_ref.h: the accumulation order over k for each output element
// is exactly the reference's, only the loop nest around it changes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/check.h"

namespace eagle::nn {

class Tensor {
 public:
  Tensor() = default;
  Tensor(int rows, int cols, float fill = 0.0f);
  static Tensor FromData(int rows, int cols, std::vector<float> data);

  Tensor(const Tensor& other);
  Tensor(Tensor&& other) noexcept;
  Tensor& operator=(const Tensor& other);
  Tensor& operator=(Tensor&& other) noexcept;
  ~Tensor();

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  std::int64_t size() const {
    return static_cast<std::int64_t>(rows_) * cols_;
  }
  bool empty() const { return size() == 0; }

  float& at(int r, int c) {
    EAGLE_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_) +
                 static_cast<std::size_t>(c)];
  }
  float at(int r, int c) const {
    EAGLE_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_) +
                 static_cast<std::size_t>(c)];
  }

  float* data() { return data_; }
  const float* data() const { return data_; }
  float* row(int r) { return data_ + static_cast<std::size_t>(r) * cols_; }
  const float* row(int r) const {
    return data_ + static_cast<std::size_t>(r) * cols_;
  }

  void Fill(float v);
  bool SameShape(const Tensor& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  std::string ShapeString() const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  float* data_ = nullptr;  // arena-backed, rows_*cols_ floats
};

// out += a * b  (m×k times k×n). Accumulating form so backward passes can
// reuse it.
void GemmAccum(const Tensor& a, const Tensor& b, Tensor& out);
// out += aᵀ * b.
void GemmTransAAccum(const Tensor& a, const Tensor& b, Tensor& out);
// out += a * bᵀ.
void GemmTransBAccum(const Tensor& a, const Tensor& b, Tensor& out);

// out = a * b (allocating convenience).
Tensor MatMul(const Tensor& a, const Tensor& b);

// y += alpha * x (same shape).
void Axpy(float alpha, const Tensor& x, Tensor& y);

// Sum of squares of all elements.
double SquaredNorm(const Tensor& t);

}  // namespace eagle::nn
