// Dense fp32 matrix type used by the agent networks.
//
// Everything the agents compute (grouper logits, LSTM states, attention
// scores) is a rank-2 tensor; vectors are 1×C or R×1. Kernels are written
// for single-core cache behaviour (ikj loops) — at agent sizes (64 groups,
// 128–512 hidden) this sustains several GFLOP/s, plenty for training.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/check.h"

namespace eagle::nn {

class Tensor {
 public:
  Tensor() = default;
  Tensor(int rows, int cols, float fill = 0.0f);
  static Tensor FromData(int rows, int cols, std::vector<float> data);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  std::int64_t size() const {
    return static_cast<std::int64_t>(rows_) * cols_;
  }
  bool empty() const { return size() == 0; }

  float& at(int r, int c) {
    EAGLE_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_) +
                 static_cast<std::size_t>(c)];
  }
  float at(int r, int c) const {
    EAGLE_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_) +
                 static_cast<std::size_t>(c)];
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float* row(int r) { return data() + static_cast<std::size_t>(r) * cols_; }
  const float* row(int r) const {
    return data() + static_cast<std::size_t>(r) * cols_;
  }

  void Fill(float v);
  bool SameShape(const Tensor& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  std::string ShapeString() const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<float> data_;
};

// out += a * b  (m×k times k×n). Accumulating form so backward passes can
// reuse it.
void GemmAccum(const Tensor& a, const Tensor& b, Tensor& out);
// out += aᵀ * b.
void GemmTransAAccum(const Tensor& a, const Tensor& b, Tensor& out);
// out += a * bᵀ.
void GemmTransBAccum(const Tensor& a, const Tensor& b, Tensor& out);

// out = a * b (allocating convenience).
Tensor MatMul(const Tensor& a, const Tensor& b);

// y += alpha * x (same shape).
void Axpy(float alpha, const Tensor& x, Tensor& y);

// Sum of squares of all elements.
double SquaredNorm(const Tensor& t);

}  // namespace eagle::nn
