#include "nn/init.h"

// Initializers are defined in layers.cpp; this TU anchors the init.h
// convenience header in the build.
