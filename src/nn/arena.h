// Per-thread freelist arena backing nn::Tensor storage.
//
// A training round records and tears down a tape with thousands of nodes,
// each holding one or two small tensors; with vector-backed storage every
// node was a malloc/free pair on the hot path. The arena keeps released
// buffers in thread-local power-of-two size-class freelists, so a tape
// that is rebuilt with the same shapes (every PPO epoch) allocates
// nothing after the first pass. Tape::Reset destroys nodes in LIFO order,
// which replays buffers back onto the freelists so the next forward pass
// pops them in exactly the order it wants them.
//
// Determinism: the arena hands out storage, never values — every Tensor
// constructor fills or copies its full extent — so pooling cannot change
// a single output bit. Thread safety: freelists are thread_local and a
// buffer released on a different thread than it was acquired on simply
// joins the releasing thread's pool, so there is no shared state at all.
// Lifetime: each thread's pool is trimmed when the thread exits; tensors
// that outlive their birth thread are safe because the underlying blocks
// come from the global aligned operator new.
#pragma once

#include <cstdint>

namespace eagle::nn {

// Counters for the calling thread's arena (pooled size classes only;
// oversized buffers go straight to the global allocator uncounted).
struct ArenaStats {
  std::uint64_t acquires = 0;
  std::uint64_t releases = 0;
  std::uint64_t pool_hits = 0;     // acquires served from a freelist
  std::uint64_t fresh_allocs = 0;  // acquires that reached operator new
  std::uint64_t pooled_bytes = 0;  // bytes currently cached in freelists
};

ArenaStats ArenaStatsSnapshot();

// Frees every buffer cached by the calling thread's arena.
void ArenaTrim();

namespace detail {

// All returned pointers are 32-byte aligned (SIMD loads in the GEMM
// kernels). Contents are uninitialized. `count` is in floats and must be
// the same value at release that was passed at acquire.
float* ArenaAcquire(std::int64_t count);
void ArenaRelease(float* ptr, std::int64_t count);

}  // namespace detail
}  // namespace eagle::nn
