// The one multiply-accumulate primitive shared by every GEMM path.
//
// Bit-identity across the naive reference, the blocked portable kernels,
// and the EAGLE_SIMD intrinsics path requires every variant to perform
// the *same rounding sequence* per output element. The compiler's freedom
// to contract `acc + a*b` into an fma (or not) per call site would break
// that, so the whole repo builds with -ffp-contract=off and hot loops
// spell the contraction out through MulAdd: a single-rounding fused
// multiply-add wherever the hardware has one, and the plain two-rounding
// form elsewhere. Within one binary every path therefore agrees exactly;
// a lane of a vector fma and a scalar std::fmaf round identically by
// IEEE-754, which is what lets the SIMD kernels match the scalar oracle.
#pragma once

#include <cmath>

namespace eagle::nn::detail {

inline float MulAdd(float a, float b, float acc) {
#if defined(__FMA__)
  return std::fmaf(a, b, acc);
#else
  return acc + a * b;
#endif
}

}  // namespace eagle::nn::detail
