#include "nn/naive_ref.h"

#include "nn/gemm_inner.h"

namespace eagle::nn::naive {

using detail::MulAdd;

void GemmAccum(const Tensor& a, const Tensor& b, Tensor& out) {
  EAGLE_CHECK_MSG(a.cols() == b.rows() && out.rows() == a.rows() &&
                      out.cols() == b.cols(),
                  "gemm shape mismatch: " << a.ShapeString() << " * "
                                          << b.ShapeString() << " -> "
                                          << out.ShapeString());
  const int m = a.rows(), k = a.cols(), n = b.cols();
  for (int i = 0; i < m; ++i) {
    const float* arow = a.row(i);
    float* orow = out.row(i);
    for (int p = 0; p < k; ++p) {
      const float av = arow[p];
      const float* brow = b.row(p);
      for (int j = 0; j < n; ++j) orow[j] = MulAdd(av, brow[j], orow[j]);
    }
  }
}

void GemmTransAAccum(const Tensor& a, const Tensor& b, Tensor& out) {
  // out(k, n) += aᵀ(k, m) * b(m, n), a is m×k.
  EAGLE_CHECK_MSG(a.rows() == b.rows() && out.rows() == a.cols() &&
                      out.cols() == b.cols(),
                  "gemmTA shape mismatch: " << a.ShapeString() << "ᵀ * "
                                            << b.ShapeString() << " -> "
                                            << out.ShapeString());
  const int m = a.rows(), k = a.cols(), n = b.cols();
  for (int i = 0; i < m; ++i) {
    const float* arow = a.row(i);
    const float* brow = b.row(i);
    for (int p = 0; p < k; ++p) {
      const float av = arow[p];
      float* orow = out.row(p);
      for (int j = 0; j < n; ++j) orow[j] = MulAdd(av, brow[j], orow[j]);
    }
  }
}

void GemmTransBAccum(const Tensor& a, const Tensor& b, Tensor& out) {
  // out(m, k) += a(m, n) * bᵀ(n, k), b is k×n.
  EAGLE_CHECK_MSG(a.cols() == b.cols() && out.rows() == a.rows() &&
                      out.cols() == b.rows(),
                  "gemmTB shape mismatch: " << a.ShapeString() << " * "
                                            << b.ShapeString() << "ᵀ -> "
                                            << out.ShapeString());
  const int m = a.rows(), n = a.cols(), k = b.rows();
  for (int i = 0; i < m; ++i) {
    const float* arow = a.row(i);
    float* orow = out.row(i);
    for (int p = 0; p < k; ++p) {
      const float* brow = b.row(p);
      float acc = 0.0f;
      for (int j = 0; j < n; ++j) acc = MulAdd(arow[j], brow[j], acc);
      orow[p] += acc;
    }
  }
}

}  // namespace eagle::nn::naive
