// Adam optimizer (Kingma & Ba) over a ParamStore.
//
// The paper trains agents with Adam, lr 0.01, gradients clipped by norm at
// 1.0 (§IV-C) — those are the defaults here.
#pragma once

#include <iosfwd>
#include <vector>

#include "nn/layers.h"

namespace eagle::nn {

struct AdamOptions {
  double lr = 0.01;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double eps = 1e-8;
  double clip_norm = 1.0;  // <=0 disables clipping
};

class Adam {
 public:
  explicit Adam(ParamStore& store, AdamOptions options = {});

  // Clips gradients, applies one update, zeroes gradients.
  // Returns the pre-clip gradient norm (for logging).
  double Step();

  std::int64_t step_count() const { return t_; }
  const AdamOptions& options() const { return options_; }
  void set_lr(double lr) { options_.lr = lr; }

  // Serializes / restores the step count and per-parameter moment slots
  // (matched by parameter name) so training checkpoints resume
  // bit-compatibly. The store must contain the same parameters.
  void SaveState(std::ostream& out) const;
  void LoadState(std::istream& in);

 private:
  struct Slot {
    Tensor m;
    Tensor v;
  };
  ParamStore* store_;
  AdamOptions options_;
  // Parallel to store_->params() order (parameters are append-only), so
  // Step() walks a flat array instead of hashing pointers.
  std::vector<Slot> slots_;
  std::int64_t t_ = 0;
};

}  // namespace eagle::nn
