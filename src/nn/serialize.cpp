#include "nn/serialize.h"

#include <cstring>
#include <fstream>
#include <vector>

#include "support/atomic_file.h"
#include "support/check.h"
#include "support/log.h"

namespace eagle::nn {

namespace {
constexpr char kMagic[8] = {'E', 'A', 'G', 'L', 'N', 'N', '1', '\0'};
}

void SaveParams(const ParamStore& store, std::ostream& out) {
  out.write(kMagic, sizeof(kMagic));
  const auto count = static_cast<std::uint32_t>(store.params().size());
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto& p : store.params()) {
    const auto name_len = static_cast<std::uint32_t>(p->name.size());
    out.write(reinterpret_cast<const char*>(&name_len), sizeof(name_len));
    out.write(p->name.data(), name_len);
    const std::int32_t rows = p->value.rows();
    const std::int32_t cols = p->value.cols();
    out.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
    out.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
    out.write(reinterpret_cast<const char*>(p->value.data()),
              static_cast<std::streamsize>(p->value.size() * sizeof(float)));
  }
}

bool SaveParams(const ParamStore& store, const std::string& path) {
  // Write-temp-then-rename (support::WriteFileAtomic): the trainer
  // overwrites its best-parameters file every time a new best placement
  // is found, and a crash mid-write must never corrupt the previous one.
  return support::WriteFileAtomic(path, [&store](std::ostream& out) {
    SaveParams(store, out);
    return static_cast<bool>(out);
  });
}

int LoadParams(ParamStore& store, std::istream& in) {
  char magic[8];
  in.read(magic, sizeof(magic));
  EAGLE_CHECK_MSG(in && std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
                  "bad checkpoint magic");
  std::uint32_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  int restored = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint32_t name_len = 0;
    in.read(reinterpret_cast<char*>(&name_len), sizeof(name_len));
    EAGLE_CHECK_MSG(in && name_len < (1u << 16), "corrupt checkpoint");
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    std::int32_t rows = 0, cols = 0;
    in.read(reinterpret_cast<char*>(&rows), sizeof(rows));
    in.read(reinterpret_cast<char*>(&cols), sizeof(cols));
    EAGLE_CHECK_MSG(in && rows >= 0 && cols >= 0, "corrupt checkpoint");
    std::vector<float> data(static_cast<std::size_t>(rows) *
                            static_cast<std::size_t>(cols));
    in.read(reinterpret_cast<char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(float)));
    EAGLE_CHECK_MSG(in, "truncated checkpoint");
    Parameter* p = store.Find(name);
    if (p == nullptr) {
      EAGLE_LOG(Warn) << "checkpoint param " << name << " not in store";
      continue;
    }
    EAGLE_CHECK_MSG(p->value.rows() == rows && p->value.cols() == cols,
                    "shape mismatch for " << name);
    p->value = Tensor::FromData(rows, cols, std::move(data));
    ++restored;
  }
  return restored;
}

int LoadParams(ParamStore& store, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EAGLE_CHECK_MSG(in, "cannot open checkpoint " << path);
  return LoadParams(store, in);
}

}  // namespace eagle::nn
