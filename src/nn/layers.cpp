#include "nn/layers.h"

#include <cmath>

#include "support/check.h"

namespace eagle::nn {

Parameter* ParamStore::Create(const std::string& name, int rows, int cols) {
  EAGLE_CHECK_MSG(Find(name) == nullptr, "duplicate parameter " << name);
  // One-time parameter construction at model-build time; parameters are
  // long-lived (they outlive every forward/backward pass), so the tensor
  // arena — a per-step scratch pool — is the wrong owner for them.
  // eagle-lint: allow(HP02)
  auto p = std::make_unique<Parameter>();
  p->name = name;
  p->value = Tensor(rows, cols);
  p->grad = Tensor(rows, cols);
  params_.push_back(std::move(p));
  return params_.back().get();
}

Parameter* ParamStore::Find(const std::string& name) const {
  for (const auto& p : params_) {
    if (p->name == name) return p.get();
  }
  return nullptr;
}

std::int64_t ParamStore::NumScalars() const {
  std::int64_t total = 0;
  for (const auto& p : params_) total += p->value.size();
  return total;
}

void ParamStore::ZeroGrads() {
  for (const auto& p : params_) p->grad.Fill(0.0f);
}

double ParamStore::GradNorm() const {
  double acc = 0.0;
  for (const auto& p : params_) acc += SquaredNorm(p->grad);
  return std::sqrt(acc);
}

double ParamStore::ClipGradNorm(double max_norm) {
  const double norm = GradNorm();
  if (norm > max_norm && norm > 0.0) {
    const auto scale = static_cast<float>(max_norm / norm);
    for (const auto& p : params_) {
      float* d = p->grad.data();
      for (std::int64_t i = 0; i < p->grad.size(); ++i) d[i] *= scale;
    }
  }
  return norm;
}

void UniformInit(Tensor& t, float lo, float hi, support::Rng& rng) {
  float* d = t.data();
  for (std::int64_t i = 0; i < t.size(); ++i) {
    d[i] = lo + (hi - lo) * rng.NextFloat();
  }
}

void XavierInit(Tensor& t, support::Rng& rng) {
  const float bound =
      std::sqrt(6.0f / static_cast<float>(t.rows() + t.cols()));
  UniformInit(t, -bound, bound, rng);
}

Linear::Linear(ParamStore& store, const std::string& name, int in_dim,
               int out_dim, support::Rng& rng)
    : in_dim_(in_dim), out_dim_(out_dim) {
  w_ = store.Create(name + "/w", in_dim, out_dim);
  b_ = store.Create(name + "/b", 1, out_dim);
  XavierInit(w_->value, rng);
}

Var Linear::Apply(Tape& tape, Var x) const {
  EAGLE_CHECK(w_ != nullptr);
  return tape.Add(tape.MatMul(x, tape.Param(w_)), tape.Param(b_));
}

LstmCell::LstmCell(ParamStore& store, const std::string& name, int in_dim,
                   int hidden, support::Rng& rng)
    : in_dim_(in_dim), hidden_(hidden) {
  w_ = store.Create(name + "/w", in_dim + hidden, 4 * hidden);
  b_ = store.Create(name + "/b", 1, 4 * hidden);
  XavierInit(w_->value, rng);
  // Forget-gate bias 1.0 (standard trick for gradient flow through time).
  for (int c = hidden; c < 2 * hidden; ++c) b_->value.at(0, c) = 1.0f;
}

LstmCell::State LstmCell::ZeroState(Tape& tape, int rows) const {
  return State{tape.Input(Tensor(rows, hidden_)),
               tape.Input(Tensor(rows, hidden_))};
}

LstmCell::State LstmCell::Step(Tape& tape, Var x, const State& prev) const {
  EAGLE_CHECK(w_ != nullptr);
  Var xh = tape.ConcatCols(x, prev.h);
  Var gates = tape.Add(tape.MatMul(xh, tape.Param(w_)), tape.Param(b_));
  const int h = hidden_;
  Var i = tape.Sigmoid(tape.SliceCols(gates, 0, h));
  Var f = tape.Sigmoid(tape.SliceCols(gates, h, 2 * h));
  Var g = tape.Tanh(tape.SliceCols(gates, 2 * h, 3 * h));
  Var o = tape.Sigmoid(tape.SliceCols(gates, 3 * h, 4 * h));
  Var c = tape.Add(tape.Mul(f, prev.c), tape.Mul(i, g));
  Var h_out = tape.Mul(o, tape.Tanh(c));
  return State{h_out, c};
}

BiLstmEncoder::BiLstmEncoder(ParamStore& store, const std::string& name,
                             int in_dim, int hidden, support::Rng& rng)
    : fwd_(store, name + "/fwd", in_dim, hidden, rng),
      bwd_(store, name + "/bwd", in_dim, hidden, rng) {}

BiLstmEncoder::Output BiLstmEncoder::Apply(Tape& tape, Var sequence) const {
  const int steps = tape.value(sequence).rows();
  EAGLE_CHECK(steps >= 1);
  std::vector<Var> fwd_states(static_cast<std::size_t>(steps));
  std::vector<Var> bwd_states(static_cast<std::size_t>(steps));
  LstmCell::State fs = fwd_.ZeroState(tape, 1);
  for (int t = 0; t < steps; ++t) {
    fs = fwd_.Step(tape, tape.Row(sequence, t), fs);
    fwd_states[static_cast<std::size_t>(t)] = fs.h;
  }
  LstmCell::State bs = bwd_.ZeroState(tape, 1);
  for (int t = steps - 1; t >= 0; --t) {
    bs = bwd_.Step(tape, tape.Row(sequence, t), bs);
    bwd_states[static_cast<std::size_t>(t)] = bs.h;
  }
  Var fwd_all = tape.ConcatRows(fwd_states);
  Var bwd_all = tape.ConcatRows(bwd_states);
  return Output{tape.ConcatCols(fwd_all, bwd_all), fs, bs};
}

BahdanauAttention::BahdanauAttention(ParamStore& store,
                                     const std::string& name, int enc_dim,
                                     int dec_dim, int attn_dim,
                                     support::Rng& rng)
    : w_enc_(store, name + "/enc", enc_dim, attn_dim, rng),
      w_dec_(store, name + "/dec", dec_dim, attn_dim, rng) {
  v_ = store.Create(name + "/v", attn_dim, 1);
  XavierInit(v_->value, rng);
}

Var BahdanauAttention::ProjectEncoder(Tape& tape, Var encoder_states) const {
  return w_enc_.Apply(tape, encoder_states);  // S×attn
}

BahdanauAttention::Result BahdanauAttention::Apply(Tape& tape,
                                                   Var encoder_states,
                                                   Var encoder_proj,
                                                   Var decoder_state) const {
  EAGLE_CHECK(v_ != nullptr);
  Var dec_proj = w_dec_.Apply(tape, decoder_state);  // 1×attn
  Var pre = tape.Tanh(tape.Add(encoder_proj, dec_proj));  // S×attn (bcast)
  Var scores = tape.Transpose(tape.MatMul(pre, tape.Param(v_)));  // 1×S
  Var weights = tape.Softmax(scores);
  Var context = tape.MatMul(weights, encoder_states);  // 1×enc_dim
  return Result{context, weights};
}

GraphConv::GraphConv(ParamStore& store, const std::string& name, int in_dim,
                     int out_dim, support::Rng& rng)
    : lin_(store, name, in_dim, out_dim, rng) {}

Var GraphConv::Apply(Tape& tape, Var normalized_adjacency, Var x,
                     bool relu) const {
  Var mixed = tape.MatMul(normalized_adjacency, lin_.Apply(tape, x));
  return relu ? tape.Relu(mixed) : mixed;
}

}  // namespace eagle::nn
