#include "nn/adam.h"

#include <cmath>

namespace eagle::nn {

Adam::Adam(ParamStore& store, AdamOptions options)
    : store_(&store), options_(options) {}

double Adam::Step() {
  const double norm = options_.clip_norm > 0
                          ? store_->ClipGradNorm(options_.clip_norm)
                          : store_->GradNorm();
  ++t_;
  const double bias1 = 1.0 - std::pow(options_.beta1, static_cast<double>(t_));
  const double bias2 = 1.0 - std::pow(options_.beta2, static_cast<double>(t_));
  for (const auto& p : store_->params()) {
    Slot& slot = slots_[p.get()];
    if (slot.m.empty()) {
      slot.m = Tensor(p->value.rows(), p->value.cols());
      slot.v = Tensor(p->value.rows(), p->value.cols());
    }
    float* value = p->value.data();
    float* grad = p->grad.data();
    float* m = slot.m.data();
    float* v = slot.v.data();
    const auto n = p->value.size();
    for (std::int64_t i = 0; i < n; ++i) {
      m[i] = static_cast<float>(options_.beta1 * m[i] +
                                (1.0 - options_.beta1) * grad[i]);
      v[i] = static_cast<float>(options_.beta2 * v[i] +
                                (1.0 - options_.beta2) * grad[i] * grad[i]);
      const double m_hat = m[i] / bias1;
      const double v_hat = v[i] / bias2;
      value[i] -= static_cast<float>(options_.lr * m_hat /
                                     (std::sqrt(v_hat) + options_.eps));
    }
  }
  store_->ZeroGrads();
  return norm;
}

}  // namespace eagle::nn
