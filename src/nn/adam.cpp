#include "nn/adam.h"

#include <cmath>
#include <istream>
#include <ostream>

#include "support/check.h"
#include "support/metrics.h"

namespace eagle::nn {

Adam::Adam(ParamStore& store, AdamOptions options)
    : store_(&store), options_(options) {}

double Adam::Step() {
  EAGLE_SPAN("adam.step");
  const double norm = options_.clip_norm > 0
                          ? store_->ClipGradNorm(options_.clip_norm)
                          : store_->GradNorm();
  ++t_;
  const double bias1 = 1.0 - std::pow(options_.beta1, static_cast<double>(t_));
  const double bias2 = 1.0 - std::pow(options_.beta2, static_cast<double>(t_));
  const auto& params = store_->params();
  if (slots_.size() < params.size()) slots_.resize(params.size());
  for (std::size_t idx = 0; idx < params.size(); ++idx) {
    const auto& p = params[idx];
    Slot& slot = slots_[idx];
    if (slot.m.empty()) {
      slot.m = Tensor(p->value.rows(), p->value.cols());
      slot.v = Tensor(p->value.rows(), p->value.cols());
    }
    float* value = p->value.data();
    float* grad = p->grad.data();
    float* m = slot.m.data();
    float* v = slot.v.data();
    const auto n = p->value.size();
    for (std::int64_t i = 0; i < n; ++i) {
      m[i] = static_cast<float>(options_.beta1 * m[i] +
                                (1.0 - options_.beta1) * grad[i]);
      v[i] = static_cast<float>(options_.beta2 * v[i] +
                                (1.0 - options_.beta2) * grad[i] * grad[i]);
      const double m_hat = m[i] / bias1;
      const double v_hat = v[i] / bias2;
      value[i] -= static_cast<float>(options_.lr * m_hat /
                                     (std::sqrt(v_hat) + options_.eps));
    }
  }
  store_->ZeroGrads();
  return norm;
}

void Adam::SaveState(std::ostream& out) const {
  out.write(reinterpret_cast<const char*>(&t_), sizeof(t_));
  const auto& params = store_->params();
  const auto count = static_cast<std::uint32_t>(params.size());
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (std::size_t idx = 0; idx < params.size(); ++idx) {
    const auto& p = params[idx];
    const auto name_len = static_cast<std::uint32_t>(p->name.size());
    out.write(reinterpret_cast<const char*>(&name_len), sizeof(name_len));
    out.write(p->name.data(), name_len);
    const std::uint8_t has_slot =
        idx < slots_.size() && !slots_[idx].m.empty() ? 1 : 0;
    out.write(reinterpret_cast<const char*>(&has_slot), sizeof(has_slot));
    if (has_slot != 0) {
      const Slot& slot = slots_[idx];
      const auto n = static_cast<std::streamsize>(p->value.size() *
                                                  sizeof(float));
      out.write(reinterpret_cast<const char*>(slot.m.data()), n);
      out.write(reinterpret_cast<const char*>(slot.v.data()), n);
    }
  }
}

void Adam::LoadState(std::istream& in) {
  in.read(reinterpret_cast<char*>(&t_), sizeof(t_));
  std::uint32_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  EAGLE_CHECK_MSG(in, "truncated optimizer state");
  const auto& params = store_->params();
  slots_.assign(params.size(), Slot{});
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint32_t name_len = 0;
    in.read(reinterpret_cast<char*>(&name_len), sizeof(name_len));
    EAGLE_CHECK_MSG(in && name_len < (1u << 16), "corrupt optimizer state");
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    std::uint8_t has_slot = 0;
    in.read(reinterpret_cast<char*>(&has_slot), sizeof(has_slot));
    EAGLE_CHECK_MSG(in, "truncated optimizer state");
    std::size_t idx = params.size();
    for (std::size_t j = 0; j < params.size(); ++j) {
      if (params[j]->name == name) {
        idx = j;
        break;
      }
    }
    EAGLE_CHECK_MSG(idx < params.size(),
                    "optimizer state for unknown parameter " << name);
    Parameter* p = params[idx].get();
    if (has_slot == 0) {
      slots_[idx] = Slot{};
      continue;
    }
    Slot& slot = slots_[idx];
    slot.m = Tensor(p->value.rows(), p->value.cols());
    slot.v = Tensor(p->value.rows(), p->value.cols());
    const auto n =
        static_cast<std::streamsize>(p->value.size() * sizeof(float));
    in.read(reinterpret_cast<char*>(slot.m.data()), n);
    in.read(reinterpret_cast<char*>(slot.v.data()), n);
    EAGLE_CHECK_MSG(in, "truncated optimizer state");
  }
}

}  // namespace eagle::nn
